/// Compile-time proof that the thread-safety annotations actually
/// reject unguarded access — the static half of the lock-contract
/// tests (the runtime half is the AssertHeld death tests in
/// util_test.cc).
///
/// The thread-safety CI leg compiles this translation unit twice with
/// clang -fsyntax-only -Wthread-safety -Werror=thread-safety:
///
///   1. without OIPA_TSA_NEGATIVE_TEST  -> must COMPILE (the guarded
///      accesses below are correctly locked), and
///   2. with -DOIPA_TSA_NEGATIVE_TEST   -> must FAIL, because each
///      block under the define violates a declared contract.
///
/// If (2) ever compiles, the analysis is silently off (macros
/// expanding to nothing under clang, a broken wrapper annotation) and
/// every OIPA_GUARDED_BY in the codebase is decoration — so CI treats
/// a successful negative compile as a build failure.
///
/// This file is intentionally not a gtest suite and is never linked
/// into a test binary; it has no main() and is only ever parsed.

#include "util/thread_annotations.h"
#include "util/threading.h"

namespace oipa {
namespace {

/// Miniature of the real pattern (ParallelSearchState, SampleStore):
/// one mutex, one guarded field, one lock-requiring method.
class GuardedCounter {
 public:
  void BumpLocked() OIPA_REQUIRES(mu_) { ++counter_; }

  void Bump() OIPA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++counter_;
  }

  long Read() OIPA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return counter_;
  }

#ifdef OIPA_TSA_NEGATIVE_TEST
  /// Unguarded write to a guarded field: -Werror=thread-safety must
  /// reject this ("writing variable 'counter_' requires holding mutex
  /// 'mu_' exclusively").
  void BumpUnguarded() { ++counter_; }

  /// Calling a REQUIRES method without the lock must be rejected too.
  void BumpWithoutLock() { BumpLocked(); }

  /// Double-lock of a non-reentrant capability must be rejected.
  void DoubleLock() {
    MutexLock outer(&mu_);
    MutexLock inner(&mu_);  // deadlock, caught statically
    ++counter_;
  }
#endif  // OIPA_TSA_NEGATIVE_TEST

 private:
  Mutex mu_;
  long counter_ OIPA_GUARDED_BY(mu_) = 0;
};

/// Positive-path instantiation so the class is odr-used and the pass
/// analyzes every (non-negative) member.
long UseGuardedCounter() {
  GuardedCounter c;
  c.Bump();
  return c.Read();
}

/// Anchor so -Wunused does not complain about the helper above.
[[maybe_unused]] const long kAnchor = UseGuardedCounter();

}  // namespace
}  // namespace oipa
