#include <gtest/gtest.h>

#include <cmath>

#include "oipa/logistic_model.h"
#include "oipa/tangent_bound.h"
#include "util/math.h"

namespace oipa {
namespace {

// -------------------------------------------------------- LogisticModel

TEST(LogisticModelTest, PaperExampleOneValues) {
  // Example 1: alpha = 3, beta = 1. p(2 pieces) = 1/(1+e^1) ~ 0.27,
  // p(1 piece) = 1/(1+e^2) ~ 0.12.
  const LogisticAdoptionModel m(3.0, 1.0);
  EXPECT_NEAR(m.AdoptionProb(2), 0.2689, 1e-4);
  EXPECT_NEAR(m.AdoptionProb(1), 0.1192, 1e-4);
  EXPECT_EQ(m.AdoptionProb(0), 0.0);
}

TEST(LogisticModelTest, ZeroPiecesNeverAdopts) {
  const LogisticAdoptionModel m(0.5, 2.0);
  EXPECT_EQ(m.AdoptionProb(0), 0.0);
  EXPECT_GT(m.CurveValue(0), 0.0);  // the curve itself is positive
}

TEST(LogisticModelTest, MonotoneInCount) {
  const LogisticAdoptionModel m(4.0, 1.5);
  for (int c = 0; c < 10; ++c) {
    EXPECT_LT(m.AdoptionProb(c), m.AdoptionProb(c + 1));
  }
}

TEST(LogisticModelTest, TableMatchesPointwise) {
  const LogisticAdoptionModel m(2.0, 0.7);
  const auto table = m.AdoptionTable(5);
  ASSERT_EQ(table.size(), 6u);
  for (int c = 0; c <= 5; ++c) {
    EXPECT_DOUBLE_EQ(table[c], m.AdoptionProb(c));
  }
}

TEST(LogisticModelTest, AlphaRaisesBar) {
  const LogisticAdoptionModel easy(1.0, 1.0), hard(5.0, 1.0);
  EXPECT_GT(easy.AdoptionProb(1), hard.AdoptionProb(1));
}

// ------------------------------------------------------------- Tangent

TEST(TangentTest, ClosedFormOnConcaveSide) {
  // x0 >= 0: slope is the sigmoid derivative at x0.
  for (double x0 : {0.0, 0.5, 2.0, 7.0}) {
    EXPECT_NEAR(RefineTangentSlope(x0), SigmoidDerivative(x0), 1e-12);
  }
}

TEST(TangentTest, BinarySearchFindsTangency) {
  // For x0 < 0 the returned line must touch the curve somewhere > 0
  // (within tolerance) and never dip below it.
  for (double x0 : {-0.5, -2.0, -5.0, -10.0}) {
    const double w = RefineTangentSlope(x0);
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 0.25);
    const double y0 = Sigmoid(x0);
    double min_slack = 1e9;
    for (double x = x0; x <= x0 + 60.0; x += 0.001) {
      const double slack = (y0 + w * (x - x0)) - Sigmoid(x);
      EXPECT_GE(slack, -1e-6) << "x0=" << x0 << " x=" << x;
      min_slack = std::min(min_slack, slack);
    }
    EXPECT_LT(min_slack, 1e-3) << "line should be tight somewhere";
  }
}

TEST(TangentTest, SlopeDecreasesWithAnchor) {
  // Moving the anchor toward the curve's center steepens the tangent;
  // past the center it flattens again. At minimum, verify slope at very
  // negative anchor is below max derivative 1/4.
  EXPECT_LT(RefineTangentSlope(-20.0), 0.25);
  EXPECT_NEAR(RefineTangentSlope(0.0), 0.25, 1e-9);
}

class TangentTableProperty
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(TangentTableProperty, LineDominatesLogisticEverywhere) {
  const auto [alpha, beta, ell] = GetParam();
  const LogisticAdoptionModel model(alpha, beta);
  const TangentTable table(model, ell);
  for (int a = 0; a <= ell; ++a) {
    const TangentLine& line = table.line(a);
    // The line starts on the curve...
    EXPECT_NEAR(line.value_at_anchor, model.CurveValue(a), 1e-9);
    // ...and dominates both the curve and the true f at a+d for all d.
    for (int d = 0; d + a <= ell; ++d) {
      EXPECT_GE(line.ValueAt(d) + 1e-9, model.CurveValue(a + d))
          << "alpha=" << alpha << " beta=" << beta << " a=" << a
          << " d=" << d;
      EXPECT_GE(line.ValueAt(d) + 1e-9, model.AdoptionProb(a + d));
    }
  }
}

TEST_P(TangentTableProperty, GainsAreNonIncreasing) {
  // Concavity of the truncated line: marginal gains must not increase.
  const auto [alpha, beta, ell] = GetParam();
  const LogisticAdoptionModel model(alpha, beta);
  const TangentTable table(model, ell);
  for (int a = 0; a <= ell; ++a) {
    const TangentLine& line = table.line(a);
    for (int d = 0; d + 1 < ell - a; ++d) {
      EXPECT_GE(line.GainAt(d) + 1e-12, line.GainAt(d + 1));
    }
  }
}

TEST_P(TangentTableProperty, ZeroAnchoredAlsoDominates) {
  const auto [alpha, beta, ell] = GetParam();
  if (ell < 1) return;
  const LogisticAdoptionModel model(alpha, beta);
  const TangentTable table(model, ell, BoundVariant::kZeroAnchored);
  const TangentLine& line = table.line(0);
  EXPECT_EQ(line.value_at_anchor, 0.0);
  for (int c = 0; c <= ell; ++c) {
    EXPECT_GE(line.ValueAt(c) + 1e-9, model.AdoptionProb(c));
  }
  // And is tight for at least one count.
  double min_gap = 1e9;
  for (int c = 1; c <= ell; ++c) {
    min_gap = std::min(min_gap,
                       line.ValueAt(c) - model.AdoptionProb(c));
  }
  EXPECT_LT(min_gap, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TangentTableProperty,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 10.0 / 3.0, 5.0),
                       ::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(1, 3, 5, 8)));

TEST(TangentTableTest, RefinementShiftsAnchorUpward) {
  // Figure 2: as a sample gets covered (a increases), the anchor value
  // rises along the curve.
  const LogisticAdoptionModel model(3.0, 1.0);
  const TangentTable table(model, 5);
  for (int a = 0; a < 5; ++a) {
    EXPECT_LT(table.line(a).value_at_anchor,
              table.line(a + 1).value_at_anchor);
  }
}

TEST(TangentTableTest, CapAtOne) {
  const LogisticAdoptionModel model(1.0, 5.0);  // steep: saturates fast
  const TangentTable table(model, 8);
  EXPECT_EQ(table.line(0).ValueAt(8), 1.0);
}

TEST(ZeroAnchoredSlopeTest, MatchesMaxRatio) {
  const LogisticAdoptionModel model(3.0, 1.0);
  const double w = ZeroAnchoredSlope(model, 5);
  double expect = 0.0;
  for (int c = 1; c <= 5; ++c) {
    expect = std::max(expect, model.AdoptionProb(c) / c);
  }
  EXPECT_DOUBLE_EQ(w, expect);
}

}  // namespace
}  // namespace oipa
