#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/metrics.h"

namespace oipa {
namespace {

TEST(ClusteringTest, TriangleIsFullyClustered) {
  GraphBuilder b;
  b.AddUndirectedEdge(0, 1);
  b.AddUndirectedEdge(1, 2);
  b.AddUndirectedEdge(0, 2);
  const Graph g = b.Build();
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, v), 1.0);
  }
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  const Graph g = MakeStar(6);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 0), 0.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
}

TEST(ClusteringTest, MixedDirectionsCountOnce) {
  // Triangle where one side has both directions: still one link.
  GraphBuilder b;
  b.AddUndirectedEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 0);  // extra reverse direction on the 0-2 side
  const Graph g = b.Build();
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 1), 1.0);
}

TEST(ClusteringTest, DegreeBelowTwoIsZero) {
  const Graph g = MakePath(3);
  EXPECT_EQ(LocalClusteringCoefficient(g, 0), 0.0);  // degree 1
}

TEST(ClusteringTest, HolmeKimMoreClusteredThanBa) {
  // The triad-closure step is the whole point of Holme-Kim.
  const Graph hk = GenerateHolmeKim(1500, 4, 0.8, 7);
  const Graph ba = GenerateBarabasiAlbert(1500, 4, 7);
  const double c_hk = AverageClusteringCoefficient(hk, 400);
  const double c_ba = AverageClusteringCoefficient(ba, 400);
  EXPECT_GT(c_hk, 1.5 * c_ba);
}

TEST(ComponentsTest, DisconnectedPiecesCounted) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.ReserveVertices(6);  // vertices 4, 5 isolated
  const Graph g = b.Build();
  int num = 0;
  const auto comp = WeaklyConnectedComponents(g, &num);
  EXPECT_EQ(num, 4);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[5]);
  EXPECT_EQ(LargestComponentSize(g), 2);
}

TEST(ComponentsTest, DirectionIgnored) {
  // 0 -> 1 <- 2 is weakly connected.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);
  const Graph g = b.Build();
  int num = 0;
  WeaklyConnectedComponents(g, &num);
  EXPECT_EQ(num, 1);
  EXPECT_EQ(LargestComponentSize(g), 3);
}

TEST(ComponentsTest, GeneratedBaIsConnected) {
  const Graph g = GenerateBarabasiAlbert(500, 3, 11);
  EXPECT_EQ(LargestComponentSize(g), 500);
}

TEST(DegreeStatsTest, StarValues) {
  const Graph g = MakeStar(9);
  const DegreeStats stats = ComputeOutDegreeStats(g, 1.0);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 9);
  EXPECT_NEAR(stats.mean, 0.9, 1e-12);
  EXPECT_EQ(stats.median, 0.0);
}

TEST(DegreeStatsTest, PowerLawTailDetected) {
  const Graph g = GenerateBarabasiAlbert(4000, 4, 13);
  const DegreeStats stats = ComputeOutDegreeStats(g, 8.0);
  EXPECT_GT(stats.power_law_alpha, 2.0);
  EXPECT_LT(stats.power_law_alpha, 4.0);
  EXPECT_GT(stats.p99, stats.median);
}

}  // namespace
}  // namespace oipa
