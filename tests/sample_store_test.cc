// SampleStore subsystem tests: generation compaction, snapshot
// pinning, the process-wide sharing registry, store snapshot
// persistence glue, and the progressive stopping rules. Context-level
// sharing behavior (one sampling pass across adoption models,
// shared-vs-private bit-identity) lives in api_test.cc; this suite
// exercises the store directly plus the concurrency contract (it runs
// under the TSan CI leg).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "rrset/sample_store.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

class SampleStoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_shared<Graph>(GenerateHolmeKim(200, 4, 0.4, 7));
    probs_ = std::make_shared<EdgeTopicProbs>(
        AssignWeightedCascadeTopics(*graph_, 4, 2.0, 11));
    Rng rng(13);
    campaign_ = std::make_shared<Campaign>(
        Campaign::SampleUniformPieces(2, 4, &rng));
    pieces_ = std::make_shared<const std::vector<InfluenceGraph>>(
        BuildPieceGraphs(*graph_, *probs_, *campaign_));
  }

  SampleStore::Options Options(int64_t theta, uint64_t seed = 17) const {
    SampleStore::Options options;
    options.theta = theta;
    options.seed = seed;
    return options;
  }

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const EdgeTopicProbs> probs_;
  std::shared_ptr<const Campaign> campaign_;
  std::shared_ptr<const std::vector<InfluenceGraph>> pieces_;
};

// --------------------------------------------------------- compaction

TEST_F(SampleStoreFixture, GrowthWithoutReadersCompactsToOneGeneration) {
  auto store = SampleStore::Create(pieces_, Options(500));
  EXPECT_EQ(store->live_generations(), 1);
  // Four growth rounds with no outstanding snapshots: every superseded
  // generation must be freed, not retained for the store lifetime.
  for (const int64_t target : {1'000, 2'000, 4'000, 8'000}) {
    ASSERT_TRUE(store->Grow(target).ok());
  }
  EXPECT_EQ(store->theta(), 8'000);
  EXPECT_EQ(store->live_generations(), 1);
}

TEST_F(SampleStoreFixture, OutstandingSnapshotsPinTheirGenerations) {
  auto store = SampleStore::Create(pieces_, Options(400));
  SampleSnapshot first = store->snapshot();
  ASSERT_TRUE(store->Grow(800).ok());
  SampleSnapshot second = store->snapshot();
  ASSERT_TRUE(store->Grow(1'600).ok());
  // Current + two pinned retired generations.
  EXPECT_EQ(store->live_generations(), 3);
  EXPECT_EQ(first.mrr->theta(), 400);
  EXPECT_EQ(second.mrr->theta(), 800);
  // Dropping the pins compacts, newest-independent of drop order.
  first = SampleSnapshot{};
  EXPECT_EQ(store->live_generations(), 2);
  second = SampleSnapshot{};
  EXPECT_EQ(store->live_generations(), 1);
}

TEST_F(SampleStoreFixture, GrowthIsBitIdenticalToUpFrontGeneration) {
  auto store = SampleStore::Create(pieces_, Options(300));
  ASSERT_TRUE(store->Grow(1'200).ok());
  const SampleSnapshot snap = store->snapshot();
  const MrrCollection fresh = MrrCollection::Generate(*pieces_, 1'200, 17);
  ASSERT_EQ(snap.mrr->theta(), fresh.theta());
  for (int64_t i = 0; i < fresh.theta(); ++i) {
    ASSERT_EQ(snap.mrr->root(i), fresh.root(i)) << i;
    for (int j = 0; j < fresh.num_pieces(); ++j) {
      const auto a = snap.mrr->Set(i, j);
      const auto b = fresh.Set(i, j);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << i << "/" << j;
    }
  }
}

TEST_F(SampleStoreFixture, ParallelGenerationIsBitIdenticalPerModel) {
  // The sampling_threads knob must never change a single sample: each
  // sample draws from PerSampleSeed(base_seed, i) regardless of which
  // worker runs it. Compare whole stores built at 1 vs 4 workers, for
  // both diffusion models, then grow both and compare again (Extend
  // shards across the same workers).
  for (const DiffusionModel model : {DiffusionModel::kIndependentCascade,
                                     DiffusionModel::kLinearThreshold}) {
    SampleStore::Options serial = Options(700, 71);
    serial.diffusion = model;
    serial.sampling_threads = 1;
    SampleStore::Options threaded = serial;
    threaded.sampling_threads = 4;
    auto a = SampleStore::Create(pieces_, serial);
    auto b = SampleStore::Create(pieces_, threaded);
    ASSERT_TRUE(a->Grow(2'100).ok());
    ASSERT_TRUE(b->Grow(2'100).ok());
    const SampleSnapshot sa = a->snapshot();
    const SampleSnapshot sb = b->snapshot();
    ASSERT_EQ(sa.mrr->theta(), sb.mrr->theta());
    for (int64_t i = 0; i < sa.mrr->theta(); ++i) {
      ASSERT_EQ(sa.mrr->root(i), sb.mrr->root(i)) << i;
      for (int j = 0; j < sa.mrr->num_pieces(); ++j) {
        const auto x = sa.mrr->Set(i, j);
        const auto y = sb.mrr->Set(i, j);
        ASSERT_TRUE(std::equal(x.begin(), x.end(), y.begin(), y.end()))
            << i << "/" << j;
      }
    }
  }
}

TEST_F(SampleStoreFixture, StatsReportMemoryAndGenerations) {
  auto store = SampleStore::Create(pieces_, Options(500));
  const SampleStore::Stats before = store->GetStats();
  EXPECT_EQ(before.theta, 500);
  EXPECT_EQ(before.holdout_theta, 500);  // -1 resolves to theta
  EXPECT_GT(before.memory_bytes, 0);
  EXPECT_EQ(before.live_generations, 1);
  EXPECT_FALSE(before.shared);

  const SampleSnapshot pin = store->snapshot();
  ASSERT_TRUE(store->Grow(2'000).ok());
  const SampleStore::Stats after = store->GetStats();
  EXPECT_EQ(after.theta, 2'000);
  EXPECT_EQ(after.live_generations, 2);
  // Live memory covers the grown generation plus the pinned one.
  EXPECT_GT(after.memory_bytes, before.memory_bytes);
  (void)pin;
}

TEST_F(SampleStoreFixture, AdoptWithoutPiecesCannotGrow) {
  auto mrr = std::make_shared<const MrrCollection>(
      MrrCollection::Generate(*pieces_, 200, 23));
  auto store = SampleStore::Adopt(nullptr, mrr, nullptr);
  EXPECT_FALSE(store->CanGrow());
  EXPECT_EQ(store->Grow(400).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(store->has_holdout());
  EXPECT_EQ(store->theta(), 200);
}

// ----------------------------------------------------------- registry

TEST_F(SampleStoreFixture, AcquireSharesOneStoreAndOneSamplingPass) {
  const SampleStore::Options options = Options(600, 31);
  const int64_t before = MrrCollection::GeneratedSampleCount();
  auto a = SampleStore::Acquire(graph_, probs_, campaign_, options);
  const int64_t after_first = MrrCollection::GeneratedSampleCount();
  EXPECT_EQ(after_first - before, 2 * 600);
  auto b = SampleStore::Acquire(graph_, probs_, campaign_, options);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(MrrCollection::GeneratedSampleCount(), after_first);
  EXPECT_TRUE(a->shared());
}

TEST_F(SampleStoreFixture, AcquireDistinguishesSamplingConfigurations) {
  auto base = SampleStore::Acquire(graph_, probs_, campaign_,
                                   Options(400, 37));
  auto other_seed = SampleStore::Acquire(graph_, probs_, campaign_,
                                         Options(400, 38));
  SampleStore::Options lt = Options(400, 37);
  lt.diffusion = DiffusionModel::kLinearThreshold;
  auto other_model = SampleStore::Acquire(graph_, probs_, campaign_, lt);
  EXPECT_NE(base.get(), other_seed.get());
  EXPECT_NE(base.get(), other_model.get());
  // Theta is NOT part of the registry key: per-sample seeding makes a
  // larger request a strict prefix extension, so the base store is
  // grown in place instead of duplicated.
  auto other_theta = SampleStore::Acquire(graph_, probs_, campaign_,
                                          Options(800, 37));
  EXPECT_EQ(base.get(), other_theta.get());
  EXPECT_EQ(base->theta(), 800);
}

TEST_F(SampleStoreFixture, AcquireServesSmallerThetaFromLiveStore) {
  auto big = SampleStore::Acquire(graph_, probs_, campaign_,
                                  Options(900, 53));
  const int64_t before = MrrCollection::GeneratedSampleCount();
  auto small = SampleStore::Acquire(graph_, probs_, campaign_,
                                    Options(300, 53));
  // The 300-sample request is a prefix of the live 900-sample store:
  // served without drawing a single new sample.
  EXPECT_EQ(small.get(), big.get());
  EXPECT_EQ(MrrCollection::GeneratedSampleCount(), before);
  // A larger request grows the shared store by the delta only.
  auto bigger = SampleStore::Acquire(graph_, probs_, campaign_,
                                     Options(1'200, 53));
  EXPECT_EQ(bigger.get(), big.get());
  EXPECT_EQ(MrrCollection::GeneratedSampleCount() - before,
            2 * (1'200 - 900));
}

TEST_F(SampleStoreFixture, RegistryDropsDeadStores) {
  const SampleStore::Options options = Options(300, 41);
  auto store = SampleStore::Acquire(graph_, probs_, campaign_, options);
  const SampleStore* old = store.get();
  EXPECT_GE(SampleStore::RegistrySize(), 1);
  store.reset();  // last owner: the registry's weak entry expires
  const int64_t before = MrrCollection::GeneratedSampleCount();
  auto fresh = SampleStore::Acquire(graph_, probs_, campaign_, options);
  // A dead store is never resurrected — the samples are drawn again.
  EXPECT_EQ(MrrCollection::GeneratedSampleCount() - before, 2 * 300);
  (void)old;  // the address may or may not be recycled; only behavior counts
}

// ------------------------------------------- budget retention/eviction

TEST_F(SampleStoreFixture, RegistryBudgetRetainsAndEvictsLru) {
  SampleStore::SetRegistryBudget(1'000'000'000);  // effectively unbounded
  auto a = SampleStore::Acquire(graph_, probs_, campaign_,
                                Options(400, 61));
  const int64_t per_store = a->GetStats().memory_bytes;
  ASSERT_GT(per_store, 0);
  a.reset();
  // Retained past the last handle: a same-key re-acquire is a cache
  // hit — zero new samples.
  int64_t before = MrrCollection::GeneratedSampleCount();
  a = SampleStore::Acquire(graph_, probs_, campaign_, Options(400, 61));
  EXPECT_EQ(MrrCollection::GeneratedSampleCount(), before);

  auto b = SampleStore::Acquire(graph_, probs_, campaign_,
                                Options(400, 62));
  a.reset();  // a is now least recently used
  b.reset();
  SampleStore::RegistrySize();  // prune side effect only
  const SampleStore::RegistryStats retained =
      SampleStore::GetRegistryStats();
  EXPECT_EQ(retained.live_stores, 2);
  EXPECT_EQ(retained.pinned_stores, 0);
  // Both stores are live (the two sample streams differ slightly in
  // byte size, so compare against one store, not exactly two).
  EXPECT_GT(retained.memory_bytes, per_store);

  // Shrinking the budget below two stores evicts the LRU one (a);
  // b stays retained.
  const int64_t evictions_before = retained.evictions;
  SampleStore::SetRegistryBudget(per_store + per_store / 2);
  const SampleStore::RegistryStats after =
      SampleStore::GetRegistryStats();
  EXPECT_EQ(after.live_stores, 1);
  EXPECT_EQ(after.evictions, evictions_before + 1);
  before = MrrCollection::GeneratedSampleCount();
  b = SampleStore::Acquire(graph_, probs_, campaign_, Options(400, 62));
  EXPECT_EQ(MrrCollection::GeneratedSampleCount(), before);  // survivor
  b.reset();
  before = MrrCollection::GeneratedSampleCount();
  a = SampleStore::Acquire(graph_, probs_, campaign_, Options(400, 61));
  EXPECT_EQ(MrrCollection::GeneratedSampleCount() - before,
            2 * 400);  // the evicted store resamples from scratch
  // Acquiring a pins it, so budget enforcement must evict b (the only
  // unpinned retained store) to make room.
  EXPECT_EQ(SampleStore::GetRegistryStats().evictions,
            evictions_before + 2);
  a.reset();
  SampleStore::SetRegistryBudget(0);  // restore test isolation
  EXPECT_EQ(SampleStore::GetRegistryStats().live_stores, 0);
}

TEST_F(SampleStoreFixture, PinnedStoresSurviveBudgetPressure) {
  SampleStore::SetRegistryBudget(1);  // below any store's footprint
  auto pinned = SampleStore::Acquire(graph_, probs_, campaign_,
                                     Options(300, 63));
  const SampleStore::RegistryStats stats =
      SampleStore::GetRegistryStats();
  EXPECT_EQ(stats.live_stores, 1);
  EXPECT_EQ(stats.pinned_stores, 1);
  EXPECT_EQ(stats.budget_bytes, 1);
  // A pinned store is never evicted: the same key resolves to it with
  // zero new sampling even though it exceeds the budget on its own.
  const int64_t before = MrrCollection::GeneratedSampleCount();
  auto again = SampleStore::Acquire(graph_, probs_, campaign_,
                                    Options(300, 63));
  EXPECT_EQ(again.get(), pinned.get());
  EXPECT_EQ(MrrCollection::GeneratedSampleCount(), before);
  again.reset();
  pinned.reset();
  // Unpinned, it immediately falls to the 1-byte budget.
  EXPECT_EQ(SampleStore::GetRegistryStats().live_stores, 0);
  SampleStore::SetRegistryBudget(0);
}

// -------------------------------------------------------- concurrency

TEST_F(SampleStoreFixture, ConcurrentAcquireYieldsOneStore) {
  const SampleStore::Options options = Options(500, 43);
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<SampleStore>> stores(kThreads);
  const int64_t before = MrrCollection::GeneratedSampleCount();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        stores[t] =
            SampleStore::Acquire(graph_, probs_, campaign_, options);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(stores[0].get(), stores[t].get());
  }
  // Exactly one sampling pass despite the racing acquires.
  EXPECT_EQ(MrrCollection::GeneratedSampleCount() - before, 2 * 500);
}

TEST_F(SampleStoreFixture, ConcurrentGrowSolveAcrossSharingContexts) {
  // Two contexts differing only in the adoption model share one store;
  // one thread grows it round by round while the other keeps solving.
  // Under TSan this exercises the snapshot-publication path.
  ContextOptions options;
  options.theta = 400;
  options.seed = 47;
  auto a = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0), options);
  auto b = PlanningContext::Create(
      graph_, probs_, campaign_, LogisticAdoptionModel(4.0, 0.8), options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(&(*a)->sample_store(), &(*b)->sample_store());

  PlanRequest request;
  request.solver = "greedy-sigma";
  for (VertexId v = 0; v < graph_->num_vertices(); v += 5) {
    request.pool.push_back(v);
  }
  request.budgets = {3};

  std::atomic<bool> failed{false};
  std::thread grower([&] {
    for (int64_t target = 800; target <= 6'400; target *= 2) {
      if (!(*a)->GrowSamples(target).ok()) failed.store(true);
    }
  });
  std::thread solver([&] {
    for (int i = 0; i < 8; ++i) {
      const auto r = Solve(**b, request);
      if (!r.ok() || r->utility <= 0.0) failed.store(true);
    }
  });
  grower.join();
  solver.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ((*a)->samples().mrr->theta(), 6'400);
  EXPECT_EQ((*b)->samples().mrr->theta(), 6'400);
  // Once the threads are quiet, only the final generation survives.
  EXPECT_EQ((*a)->sample_store().live_generations(), 1);
}

// ----------------------------------------------------- stopping rules

TEST(StoppingRuleTest, ParseNames) {
  ASSERT_TRUE(ParseStoppingRule("holdout").ok());
  EXPECT_EQ(*ParseStoppingRule("holdout"), StoppingRuleKind::kHoldoutGap);
  ASSERT_TRUE(ParseStoppingRule("opim").ok());
  EXPECT_EQ(*ParseStoppingRule("opim"), StoppingRuleKind::kOpimBounds);
  EXPECT_EQ(ParseStoppingRule("bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StoppingRuleTest, HoldoutGapMatchesRelativeDisagreement) {
  const StoppingRule& rule =
      GetStoppingRule(StoppingRuleKind::kHoldoutGap);
  EXPECT_EQ(rule.name(), "holdout");
  StoppingInputs inputs;
  inputs.utility = 100.0;
  inputs.holdout_utility = 90.0;
  inputs.epsilon = 0.05;
  StoppingVerdict verdict = rule.Evaluate(inputs);
  EXPECT_NEAR(verdict.sampling_gap, 0.1, 1e-12);
  EXPECT_FALSE(verdict.satisfied);
  EXPECT_EQ(verdict.certified_ratio, 0.0);

  inputs.holdout_utility = 99.0;
  verdict = rule.Evaluate(inputs);
  EXPECT_NEAR(verdict.sampling_gap, 0.01, 1e-12);
  EXPECT_TRUE(verdict.satisfied);
}

TEST(StoppingRuleTest, OpimRatioTightensWithTheta) {
  const StoppingRule& rule =
      GetStoppingRule(StoppingRuleKind::kOpimBounds);
  EXPECT_EQ(rule.name(), "opim");
  StoppingInputs inputs;
  inputs.utility = 50.0;
  inputs.upper_bound = 51.0;
  inputs.holdout_utility = 50.0;
  inputs.num_vertices = 300;
  inputs.epsilon = 0.1;

  double previous = -1.0;
  for (const int64_t theta : {200, 2'000, 20'000, 200'000}) {
    inputs.theta = theta;
    inputs.holdout_theta = theta;
    const StoppingVerdict verdict = rule.Evaluate(inputs);
    EXPECT_GE(verdict.certified_ratio, previous) << theta;
    EXPECT_LE(verdict.certified_ratio, 1.0) << theta;
    previous = verdict.certified_ratio;
  }
  // Plenty of samples + a tight solver bound certify well past
  // (1 - 1/e - eps).
  EXPECT_TRUE(rule
                  .Evaluate(StoppingInputs{50.0, 51.0, 50.0, 200'000,
                                           200'000, 300, 0.1})
                  .satisfied);
  // Starved inputs certify nothing.
  StoppingInputs starved = inputs;
  starved.theta = 0;
  EXPECT_EQ(rule.Evaluate(starved).certified_ratio, 0.0);
  EXPECT_FALSE(rule.Evaluate(starved).satisfied);
}

// ------------------------------------------------------ crash recovery

class RecoveryFixture : public SampleStoreFixture {
 protected:
  void TearDown() override {
    SampleStore::ClearRecoveredSnapshots();
    SampleStore::SetRegistryBudget(0);
  }

  SampleStore::Options KeyedOptions(int64_t theta, uint64_t seed,
                                    const std::string& key) const {
    SampleStore::Options options = Options(theta, seed);
    options.source_key = key;
    return options;
  }
};

TEST_F(RecoveryFixture, RecoveredSnapshotResumesWithoutResampling) {
  const SampleStore::Options options =
      KeyedOptions(500, 71, "recovery/a");
  auto original = SampleStore::Acquire(graph_, probs_, campaign_, options);
  ASSERT_NE(original, nullptr);
  const SampleSnapshot saved = original->snapshot();
  original.reset();  // dead store: the registry entry expires

  ASSERT_TRUE(SampleStore::OfferRecoveredSnapshot("recovery/a", saved.mrr,
                                                  saved.holdout)
                  .ok());
  const int64_t before = MrrCollection::GeneratedSampleCount();
  const int64_t recovered_before =
      SampleStore::GetRegistryStats().recovered_stores;
  auto recovered =
      SampleStore::Acquire(graph_, probs_, campaign_, options);
  ASSERT_NE(recovered, nullptr);
  // The tentpole invariant: a same-configuration re-acquire is served
  // entirely from the parked snapshot — zero regenerated samples.
  EXPECT_EQ(MrrCollection::GeneratedSampleCount(), before);
  EXPECT_EQ(recovered->theta(), 500);
  EXPECT_EQ(SampleStore::GetRegistryStats().recovered_stores,
            recovered_before + 1);

  // Growth after recovery continues the exact sample stream (the
  // provenance round-trips), matching up-front generation bit-for-bit.
  ASSERT_TRUE(recovered->Grow(1'000).ok());
  const SampleSnapshot snap = recovered->snapshot();
  const MrrCollection fresh = MrrCollection::Generate(*pieces_, 1'000, 71);
  ASSERT_EQ(snap.mrr->theta(), fresh.theta());
  for (int64_t i = 0; i < fresh.theta(); ++i) {
    ASSERT_EQ(snap.mrr->root(i), fresh.root(i)) << i;
  }
}

TEST_F(RecoveryFixture, SmallerRecoveredSnapshotGrowsOnlyTheDelta) {
  const SampleStore::Options small =
      KeyedOptions(300, 73, "recovery/delta");
  auto original = SampleStore::Acquire(graph_, probs_, campaign_, small);
  const SampleSnapshot saved = original->snapshot();
  original.reset();

  ASSERT_TRUE(SampleStore::OfferRecoveredSnapshot(
                  "recovery/delta", saved.mrr, saved.holdout)
                  .ok());
  // Re-acquire at a larger theta: recovery seeds the first 300 samples
  // and only the extension is drawn (2x: in-sample + holdout).
  const int64_t before = MrrCollection::GeneratedSampleCount();
  auto recovered = SampleStore::Acquire(
      graph_, probs_, campaign_, KeyedOptions(900, 73, "recovery/delta"));
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->theta(), 900);
  EXPECT_EQ(MrrCollection::GeneratedSampleCount() - before,
            2 * (900 - 300));
}

TEST_F(RecoveryFixture, MismatchedProvenanceIsIgnoredAndResampled) {
  const SampleStore::Options options =
      KeyedOptions(400, 79, "recovery/mismatch");
  auto original = SampleStore::Acquire(graph_, probs_, campaign_, options);
  const SampleSnapshot saved = original->snapshot();
  original.reset();
  ASSERT_TRUE(SampleStore::OfferRecoveredSnapshot(
                  "recovery/mismatch", saved.mrr, saved.holdout)
                  .ok());

  // Same key, different sampling seed: the snapshot's provenance no
  // longer matches, so it must NOT be adopted — correctness beats
  // recovery, and the store resamples from scratch.
  const int64_t before = MrrCollection::GeneratedSampleCount();
  auto fresh = SampleStore::Acquire(
      graph_, probs_, campaign_,
      KeyedOptions(400, 80, "recovery/mismatch"));
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(MrrCollection::GeneratedSampleCount() - before, 2 * 400);
}

TEST_F(RecoveryFixture, OfferValidatesItsArguments) {
  const MrrCollection mrr = MrrCollection::Generate(*pieces_, 50, 83);
  auto shared = std::make_shared<const MrrCollection>(mrr);
  EXPECT_EQ(SampleStore::OfferRecoveredSnapshot("", shared, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SampleStore::OfferRecoveredSnapshot("key", nullptr, nullptr).code(),
      StatusCode::kInvalidArgument);
}

TEST_F(RecoveryFixture, ClearDropsParkedSnapshots) {
  const SampleStore::Options options =
      KeyedOptions(200, 89, "recovery/cleared");
  auto original = SampleStore::Acquire(graph_, probs_, campaign_, options);
  const SampleSnapshot saved = original->snapshot();
  original.reset();
  ASSERT_TRUE(SampleStore::OfferRecoveredSnapshot(
                  "recovery/cleared", saved.mrr, saved.holdout)
                  .ok());
  SampleStore::ClearRecoveredSnapshots();
  const int64_t before = MrrCollection::GeneratedSampleCount();
  auto fresh = SampleStore::Acquire(graph_, probs_, campaign_, options);
  EXPECT_EQ(MrrCollection::GeneratedSampleCount() - before, 2 * 200);
}

}  // namespace
}  // namespace oipa
