#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "diffusion/lt_cascade.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "topic/influence_graph.h"
#include "util/random.h"

namespace oipa {
namespace {

TEST(LtWeightsTest, NormalizesOverloadedInNeighborhoods) {
  // Three parents each with probability 0.6: sum 1.8 -> rescaled to 1.
  GraphBuilder b;
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  const Graph g = b.Build();
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.6f);
  const std::vector<float> w = LtWeights(ig);
  double sum = 0.0;
  for (float x : w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (float x : w) EXPECT_NEAR(x, 1.0 / 3.0, 1e-6);
}

TEST(LtWeightsTest, KeepsUnderloadedWeights) {
  const Graph g = MakePath(3);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.4f);
  const std::vector<float> w = LtWeights(ig);
  for (float x : w) EXPECT_FLOAT_EQ(x, 0.4f);
}

TEST(LtCascadeTest, FullWeightChainActivatesEverything) {
  // Weight 1.0 on a path: every threshold in [0,1) is met.
  const Graph g = MakePath(5);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 1.0f);
  const std::vector<float> w = LtWeights(ig);
  Rng rng(3);
  const auto active = SimulateLtCascade(g, w, {0}, &rng);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(active[v], 1);
}

TEST(LtCascadeTest, ZeroWeightActivatesOnlySeeds) {
  const Graph g = MakeCompleteDigraph(5);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.0f);
  const std::vector<float> w = LtWeights(ig);
  Rng rng(3);
  const auto active = SimulateLtCascade(g, w, {1}, &rng);
  int total = 0;
  for (uint8_t a : active) total += a;
  EXPECT_EQ(total, 1);
}

TEST(LtCascadeTest, SpreadMatchesClosedFormOnSingleEdge) {
  // 0 -> 1 with weight 0.3: P[threshold <= 0.3] = 0.3, spread = 1.3.
  const Graph g = MakePath(2);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.3f);
  const std::vector<float> w = LtWeights(ig);
  const double est = EstimateLtSpread(g, w, {0}, 200'000, 7);
  EXPECT_NEAR(est, 1.3, 0.01);
}

TEST(LtRrSetTest, PathStructure) {
  // Under LT each vertex keeps at most one in-edge, so RR sets are
  // reverse paths.
  const Graph g = GenerateErdosRenyi(50, 0.1, 11);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  const std::vector<float> w = LtWeights(ig);
  Rng rng(13);
  std::vector<VertexId> set;
  for (int i = 0; i < 200; ++i) {
    SampleLtRrSet(g, w, static_cast<VertexId>(rng.NextBounded(50)), &rng,
                  &set);
    // No duplicates (path, cycle-checked).
    std::vector<VertexId> sorted = set;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
    // Consecutive members are connected by an edge (reverse path).
    for (size_t j = 0; j + 1 < set.size(); ++j) {
      bool linked = false;
      for (VertexId nb : g.InNeighbors(set[j])) {
        if (nb == set[j + 1]) linked = true;
      }
      EXPECT_TRUE(linked) << "position " << j;
    }
  }
}

TEST(LtRrSetTest, EstimatorMatchesForwardSimulation) {
  // RIS identity under LT: P[S hits RR(x)] = P[S activates x].
  const Graph g = GenerateErdosRenyi(30, 0.12, 17);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  const std::vector<float> w = LtWeights(ig);
  const std::vector<VertexId> seeds{0, 5, 9};

  Rng rng(19);
  const int64_t theta = 200'000;
  int64_t covered = 0;
  std::vector<VertexId> set;
  for (int64_t i = 0; i < theta; ++i) {
    const VertexId root = static_cast<VertexId>(rng.NextBounded(30));
    SampleLtRrSet(g, w, root, &rng, &set);
    for (VertexId s : seeds) {
      if (std::find(set.begin(), set.end(), s) != set.end()) {
        ++covered;
        break;
      }
    }
  }
  const double ris_estimate =
      30.0 * static_cast<double>(covered) / static_cast<double>(theta);
  const double simulated = EstimateLtSpread(g, w, seeds, 100'000, 23);
  EXPECT_NEAR(ris_estimate, simulated, 0.03 * simulated);
}

}  // namespace
}  // namespace oipa
