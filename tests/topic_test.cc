#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"
#include "topic/influence_graph.h"
#include "topic/prob_models.h"
#include "topic/topic_vector.h"
#include "util/random.h"

namespace oipa {
namespace {

// ----------------------------------------------------------- TopicVector

TEST(TopicVectorTest, PureTopicIsOneHot) {
  const TopicVector v = TopicVector::PureTopic(5, 2);
  EXPECT_EQ(v.num_topics(), 5);
  EXPECT_EQ(v[2], 1.0);
  EXPECT_EQ(v.Sum(), 1.0);
  EXPECT_EQ(v.NumNonZero(), 1);
}

TEST(TopicVectorTest, UniformSumsToOne) {
  const TopicVector v = TopicVector::Uniform(4);
  EXPECT_NEAR(v.Sum(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
}

TEST(TopicVectorTest, NormalizeRescales) {
  TopicVector v(3);
  v[0] = 2.0;
  v[1] = 2.0;
  v.Normalize();
  EXPECT_NEAR(v.Sum(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
}

TEST(TopicVectorTest, NormalizeZeroVectorIsNoop) {
  TopicVector v(3);
  v.Normalize();
  EXPECT_EQ(v.Sum(), 0.0);
}

TEST(TopicVectorTest, SampleSparseRespectsNonZeroCount) {
  Rng rng(3);
  for (int nz = 1; nz <= 4; ++nz) {
    const TopicVector v = TopicVector::SampleSparse(10, nz, &rng);
    EXPECT_EQ(v.NumNonZero(), nz);
    EXPECT_NEAR(v.Sum(), 1.0, 1e-9);
  }
}

TEST(TopicVectorTest, SampleDirichletOnSimplex) {
  Rng rng(5);
  const TopicVector v = TopicVector::SampleDirichlet(6, 0.5, &rng);
  EXPECT_NEAR(v.Sum(), 1.0, 1e-9);
  for (int z = 0; z < 6; ++z) EXPECT_GE(v[z], 0.0);
}

// ------------------------------------------------------- EdgeTopicProbs

TEST(EdgeTopicProbsTest, SetAndQuery) {
  EdgeTopicProbs probs(2, 4);
  probs.SetEdge(0, {{1, 0.5f}, {3, 0.25f}});
  probs.SetEdge(1, {});
  EXPECT_EQ(probs.num_edges(), 2);
  EXPECT_EQ(probs.num_entries(), 2);
  EXPECT_FLOAT_EQ(probs.Prob(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(probs.Prob(0, 3), 0.25f);
  EXPECT_EQ(probs.Prob(0, 0), 0.0);
  EXPECT_EQ(probs.Prob(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(probs.AverageNonZeros(), 1.0);
}

TEST(EdgeTopicProbsTest, EntriesSortedByTopic) {
  EdgeTopicProbs probs(1, 4);
  probs.SetEdge(0, {{3, 0.1f}, {0, 0.2f}});
  const auto entries = probs.EdgeEntries(0);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].topic, 0);
  EXPECT_EQ(entries[1].topic, 3);
}

TEST(EdgeTopicProbsTest, PieceProbIsDotProduct) {
  EdgeTopicProbs probs(1, 3);
  probs.SetEdge(0, {{0, 0.4f}, {2, 0.8f}});
  TopicVector piece(3);
  piece[0] = 0.5;
  piece[2] = 0.5;
  EXPECT_NEAR(probs.PieceProb(0, piece), 0.5 * 0.4 + 0.5 * 0.8, 1e-6);
  EXPECT_NEAR(probs.MeanProb(0), (0.4 + 0.8) / 3.0, 1e-6);
}

TEST(EdgeTopicProbsTest, PieceProbClampedToOne) {
  EdgeTopicProbs probs(1, 1);
  probs.SetEdge(0, {{0, 1.0f}});
  TopicVector piece(1);
  piece[0] = 1.0;
  EXPECT_DOUBLE_EQ(probs.PieceProb(0, piece), 1.0);
}

// ---------------------------------------------------------- Campaign

TEST(CampaignTest, UniformPiecesAreOneHot) {
  Rng rng(7);
  const Campaign c = Campaign::SampleUniformPieces(5, 10, &rng);
  EXPECT_EQ(c.num_pieces(), 5);
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(c.piece(j).topics.NumNonZero(), 1);
    EXPECT_NEAR(c.piece(j).topics.Sum(), 1.0, 1e-12);
  }
}

TEST(CampaignTest, SparsePiecesHaveRequestedSupport) {
  Rng rng(7);
  const Campaign c = Campaign::SampleSparsePieces(3, 10, 4, &rng);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(c.piece(j).topics.NumNonZero(), 4);
  }
}

// ------------------------------------------------------ InfluenceGraph

TEST(InfluenceGraphTest, ForPieceCollapsesProbabilities) {
  const Graph g = MakePath(3);  // edges 0->1, 1->2
  EdgeTopicProbs probs(2, 2);
  probs.SetEdge(0, {{0, 1.0f}});
  probs.SetEdge(1, {{1, 0.5f}});
  const InfluenceGraph ig0 =
      InfluenceGraph::ForPiece(g, probs, TopicVector::PureTopic(2, 0));
  EXPECT_FLOAT_EQ(ig0.EdgeProb(0), 1.0f);
  EXPECT_FLOAT_EQ(ig0.EdgeProb(1), 0.0f);
  const InfluenceGraph ig1 =
      InfluenceGraph::ForPiece(g, probs, TopicVector::PureTopic(2, 1));
  EXPECT_FLOAT_EQ(ig1.EdgeProb(0), 0.0f);
  EXPECT_FLOAT_EQ(ig1.EdgeProb(1), 0.5f);
}

TEST(InfluenceGraphTest, TopicBlindIsMean) {
  const Graph g = MakePath(2);
  EdgeTopicProbs probs(1, 4);
  probs.SetEdge(0, {{0, 0.8f}, {1, 0.4f}});
  const InfluenceGraph blind = InfluenceGraph::TopicBlind(g, probs);
  EXPECT_NEAR(blind.EdgeProb(0), (0.8 + 0.4) / 4.0, 1e-6);
}

TEST(InfluenceGraphTest, WeightedCascadeInverseInDegree) {
  const Graph g = MakeStar(4);  // all edges point at distinct leaves
  const InfluenceGraph wc = InfluenceGraph::WeightedCascade(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_FLOAT_EQ(wc.EdgeProb(e), 1.0f);
  }
  // Two parents -> probability 1/2.
  GraphBuilder b;
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  const Graph g2 = b.Build();
  const InfluenceGraph wc2 = InfluenceGraph::WeightedCascade(g2);
  EXPECT_FLOAT_EQ(wc2.EdgeProb(0), 0.5f);
}

TEST(InfluenceGraphTest, BuildPieceGraphsOnePerPiece) {
  const Graph g = MakeCycle(4);
  Rng rng(9);
  const Campaign c = Campaign::SampleUniformPieces(3, 5, &rng);
  EdgeTopicProbs probs = AssignWeightedCascadeTopics(g, 5, 2.0, 11);
  const std::vector<InfluenceGraph> pieces = BuildPieceGraphs(g, probs, c);
  EXPECT_EQ(pieces.size(), 3u);
  for (const auto& ig : pieces) {
    EXPECT_EQ(&ig.graph(), &g);
  }
}

// --------------------------------------------------------- Prob models

TEST(ProbModelsTest, WeightedCascadeAverageNonZeros) {
  const Graph g = GenerateErdosRenyi(300, 0.03, 13);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(g, 10, 2.5, 17);
  EXPECT_EQ(probs.num_edges(), g.num_edges());
  EXPECT_NEAR(probs.AverageNonZeros(), 2.5, 0.2);
}

TEST(ProbModelsTest, TrivalencyUsesOnlyThreeLevels) {
  const Graph g = GenerateErdosRenyi(100, 0.05, 13);
  const EdgeTopicProbs probs = AssignTrivalencyTopics(g, 5, 1.5, 19);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const TopicProb& tp : probs.EdgeEntries(e)) {
      EXPECT_TRUE(tp.prob == 0.1f || tp.prob == 0.01f ||
                  tp.prob == 0.001f);
    }
  }
}

TEST(ProbModelsTest, AffinityRespectsTopK) {
  const Graph g = GenerateErdosRenyi(200, 0.04, 23);
  const auto profiles = SampleNodeTopicProfiles(200, 8, 0.5, 4, 29);
  const EdgeTopicProbs probs = AssignAffinityTopics(g, profiles, 2, 1.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(probs.EdgeEntries(e).size(), 2u);
  }
}

TEST(ProbModelsTest, NodeProfilesTruncatedAndNormalized) {
  const auto profiles = SampleNodeTopicProfiles(50, 10, 0.3, 3, 31);
  EXPECT_EQ(profiles.size(), 50u);
  for (const TopicVector& p : profiles) {
    EXPECT_LE(p.NumNonZero(), 3);
    EXPECT_NEAR(p.Sum(), 1.0, 1e-9);
  }
}

TEST(ProbModelsTest, ProbabilitiesAlwaysInUnitRange) {
  const Graph g = GenerateBarabasiAlbert(400, 3, 37);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(g, 6, 1.5, 41);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const TopicProb& tp : probs.EdgeEntries(e)) {
      EXPECT_GE(tp.prob, 0.0f);
      EXPECT_LE(tp.prob, 1.0f);
    }
  }
}

}  // namespace
}  // namespace oipa
