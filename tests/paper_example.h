#ifndef OIPA_TESTS_PAPER_EXAMPLE_H_
#define OIPA_TESTS_PAPER_EXAMPLE_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "oipa/logistic_model.h"
#include "topic/campaign.h"
#include "topic/edge_topic_probs.h"
#include "topic/influence_graph.h"

namespace oipa {
namespace testing_support {

/// The paper's Figure-1 running example. Vertices a..e are 0..4. Piece t1
/// is pure topic 0 and flows a -> b -> c -> d; piece t2 is pure topic 1
/// and flows e -> d -> c -> b. All non-zero probabilities are 1, so every
/// quantity is deterministic. With alpha = 3, beta = 1, the plan
/// {S1={a}, S2={e}} has adoption utility 1.05 (Example 1): users a and e
/// receive one piece each (p = 0.12) and b, c, d receive both (p = 0.27).
struct PaperExample {
  static constexpr VertexId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

  PaperExample() : probs(6, 2) {
    GraphBuilder builder(5);
    // Topic-0 chain.
    builder.AddEdge(kA, kB);
    builder.AddEdge(kB, kC);
    builder.AddEdge(kC, kD);
    // Topic-1 chain.
    builder.AddEdge(kE, kD);
    builder.AddEdge(kD, kC);
    builder.AddEdge(kC, kB);
    graph = std::make_unique<Graph>(builder.Build());

    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      const Edge& edge = graph->edge(e);
      // Edges of the a->b->c->d chain are topic 0; the rest topic 1.
      const bool topic0 =
          (edge.src == kA && edge.dst == kB) ||
          (edge.src == kB && edge.dst == kC) ||
          (edge.src == kC && edge.dst == kD);
      probs.SetEdge(e, {{topic0 ? 0 : 1, 1.0f}});
    }

    campaign.AddPiece({"t1", TopicVector::PureTopic(2, 0)});
    campaign.AddPiece({"t2", TopicVector::PureTopic(2, 1)});
    pieces = BuildPieceGraphs(*graph, probs, campaign);
  }

  LogisticAdoptionModel model() const {
    return LogisticAdoptionModel(3.0, 1.0);
  }

  std::unique_ptr<Graph> graph;
  EdgeTopicProbs probs;
  Campaign campaign;
  std::vector<InfluenceGraph> pieces;
};

}  // namespace testing_support
}  // namespace oipa

#endif  // OIPA_TESTS_PAPER_EXAMPLE_H_
