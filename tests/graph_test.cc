#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "util/stats.h"

namespace oipa {
namespace {

// ------------------------------------------------------------------ CSR

TEST(GraphTest, EmptyGraph) {
  const Graph g = Graph::Empty(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.OutDegree(v), 0);
    EXPECT_EQ(g.InDegree(v), 0);
  }
}

TEST(GraphTest, ForwardAndReverseAdjacencyAgree) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  const Graph g = b.Build();
  ASSERT_EQ(g.num_edges(), 4);

  // Every (edge id, endpoints) triple visible forward must be visible in
  // reverse, and vice versa.
  std::set<std::tuple<VertexId, VertexId, EdgeId>> fwd, rev;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.OutNeighbors(v);
    const auto eids = g.OutEdgeIds(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      fwd.insert({v, nbrs[i], eids[i]});
    }
    const auto in_nbrs = g.InNeighbors(v);
    const auto in_eids = g.InEdgeIds(v);
    for (size_t i = 0; i < in_nbrs.size(); ++i) {
      rev.insert({in_nbrs[i], v, in_eids[i]});
    }
  }
  EXPECT_EQ(fwd, rev);
  EXPECT_EQ(fwd.size(), 4u);
}

TEST(GraphTest, EdgeIdsIndexEdgeList) {
  GraphBuilder b;
  b.AddEdge(2, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.OutNeighbors(v);
    const auto eids = g.OutEdgeIds(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(g.edge(eids[i]).src, v);
      EXPECT_EQ(g.edge(eids[i]).dst, nbrs[i]);
    }
  }
}

TEST(GraphTest, DegreesAndAverage) {
  const Graph g = MakeStar(4);  // 0 -> 1..4
  EXPECT_EQ(g.OutDegree(0), 4);
  EXPECT_EQ(g.InDegree(0), 0);
  EXPECT_EQ(g.InDegree(3), 1);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 4.0 / 5.0);
  const std::vector<double> seq = g.OutDegreeSequence();
  EXPECT_EQ(seq[0], 4.0);
  EXPECT_EQ(seq[1], 0.0);
}

// -------------------------------------------------------------- Builder

TEST(GraphBuilderTest, DeduplicatesAndDropsSelfLoops) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);  // duplicate
  b.AddEdge(1, 1);  // self loop
  b.AddEdge(1, 0);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(GraphBuilderTest, GrowsVertexCountFromEndpoints) {
  GraphBuilder b;
  b.AddEdge(0, 9);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 10);
}

TEST(GraphBuilderTest, ReserveVerticesKeepsIsolated) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.ReserveVertices(100);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 100);
}

TEST(GraphBuilderTest, UndirectedAddsBothDirections) {
  GraphBuilder b;
  b.AddUndirectedEdge(0, 1);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.OutDegree(1), 1);
}

TEST(GraphBuilderTest, BuilderResetsAfterBuild) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  (void)b.Build();
  EXPECT_EQ(b.num_pending_edges(), 0u);
  const Graph g2 = b.Build();
  EXPECT_EQ(g2.num_vertices(), 0);
}

// --------------------------------------------------------- Fixed shapes

TEST(ShapesTest, Path) {
  const Graph g = MakePath(4);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.OutDegree(3), 0);
}

TEST(ShapesTest, Cycle) {
  const Graph g = MakeCycle(5);
  EXPECT_EQ(g.num_edges(), 5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.OutDegree(v), 1);
    EXPECT_EQ(g.InDegree(v), 1);
  }
}

TEST(ShapesTest, CompleteDigraph) {
  const Graph g = MakeCompleteDigraph(4);
  EXPECT_EQ(g.num_edges(), 12);
}

TEST(ShapesTest, Grid) {
  const Graph g = MakeGrid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  // 2 * (3*3 + 2*4) = 34 directed edges.
  EXPECT_EQ(g.num_edges(), 34);
}

// ------------------------------------------------------------ Generators

TEST(GeneratorsTest, ErdosRenyiEdgeCountNearExpectation) {
  const VertexId n = 500;
  const double p = 0.01;
  const Graph g = GenerateErdosRenyi(n, p, 77);
  const double expected = p * n * (n - 1);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  const Graph a = GenerateErdosRenyi(100, 0.05, 5);
  const Graph b = GenerateErdosRenyi(100, 0.05, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(GeneratorsTest, ErdosRenyiExtremes) {
  EXPECT_EQ(GenerateErdosRenyi(50, 0.0, 1).num_edges(), 0);
  EXPECT_EQ(GenerateErdosRenyi(10, 1.0, 1).num_edges(), 90);
}

TEST(GeneratorsTest, BarabasiAlbertSizeAndPowerLaw) {
  const VertexId n = 3000;
  const int m_per = 4;
  const Graph g = GenerateBarabasiAlbert(n, m_per, 3);
  EXPECT_EQ(g.num_vertices(), n);
  // Each new node adds m_per undirected edges (2*m_per directed).
  const int64_t expected =
      2 * (m_per * (m_per + 1) / 2 + (n - m_per - 1) * m_per);
  EXPECT_EQ(g.num_edges(), expected);
  // Degree-distribution tail should fit a power law with exponent ~3.
  const double alpha =
      PowerLawExponentMle(g.OutDegreeSequence(), 2.0 * m_per);
  EXPECT_GT(alpha, 2.0);
  EXPECT_LT(alpha, 4.0);
}

TEST(GeneratorsTest, HolmeKimSizeMatchesBa) {
  const Graph g = GenerateHolmeKim(2000, 5, 0.5, 9);
  EXPECT_EQ(g.num_vertices(), 2000);
  EXPECT_GT(g.num_edges(), 2 * 5 * 1900);  // allow a few skipped links
  const double alpha = PowerLawExponentMle(g.OutDegreeSequence(), 10.0);
  EXPECT_GT(alpha, 1.8);
  EXPECT_LT(alpha, 4.5);
}

TEST(GeneratorsTest, WattsStrogatzDegreeRegular) {
  const Graph g = GenerateWattsStrogatz(500, 3, 0.0, 4);
  // No rewiring: every vertex has exactly 2*k_ring undirected neighbors.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.OutDegree(v), 6) << "v=" << v;
  }
}

TEST(GeneratorsTest, WattsStrogatzRewiredStillConnectedish) {
  const Graph g = GenerateWattsStrogatz(500, 3, 0.2, 4);
  EXPECT_GT(g.num_edges(), 500 * 4);  // most edges survive as pairs
}

TEST(GeneratorsTest, RetweetForestSparseWithHeavyTail) {
  const Graph g = GenerateRetweetForest(20'000, 1.2, 19);
  EXPECT_EQ(g.num_vertices(), 20'000);
  EXPECT_NEAR(g.AverageDegree(), 1.2, 0.15);
  // Celebrity in-degrees dominate: max in-degree far above the average.
  int64_t max_in = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  EXPECT_GT(max_in, 200);
}

// -------------------------------------------------------------------- IO

TEST(GraphIoTest, ParseEdgeListBasic) {
  auto g = ParseEdgeList("# comment\n0 1\n1 2\n\n2 0\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3);
  EXPECT_EQ(g->num_edges(), 3);
}

TEST(GraphIoTest, ParseRemapsSparseIds) {
  auto g = ParseEdgeList("100 200\n200 300\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3);  // dense remap
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(GraphIoTest, ParseRejectsMissingTarget) {
  auto g = ParseEdgeList("0 1\n2\n");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, ParseRejectsNegativeIds) {
  auto g = ParseEdgeList("0 -1\n");
  EXPECT_FALSE(g.ok());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  auto g = LoadEdgeListFile("/nonexistent/definitely/missing.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, SaveLoadRoundtrip) {
  const Graph g = GenerateErdosRenyi(50, 0.1, 6);
  const std::string path = testing::TempDir() + "/graph_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeListFile(g, path).ok());
  auto loaded = LoadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oipa
