#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/generators.h"
#include "oipa/adoption.h"
#include "rrset/mrr_io.h"
#include "topic/campaign.h"
#include "topic/prob_models.h"
#include "util/fault_injector.h"
#include "util/random.h"

namespace oipa {
namespace {

const std::vector<InfluenceGraph>& SharedPieces() {
  static const Graph* graph =
      new Graph(GenerateErdosRenyi(40, 0.1, 7));
  static const EdgeTopicProbs* probs = new EdgeTopicProbs(
      AssignWeightedCascadeTopics(*graph, 4, 2.0, 11));
  static const std::vector<InfluenceGraph>* pieces = [] {
    Rng rng(13);
    static const Campaign campaign =
        Campaign::SampleUniformPieces(3, 4, &rng);
    return new std::vector<InfluenceGraph>(
        BuildPieceGraphs(*graph, *probs, campaign));
  }();
  return *pieces;
}

MrrCollection MakeCollection(int64_t theta, uint64_t seed) {
  return MrrCollection::Generate(SharedPieces(), theta, seed);
}

TEST(MrrIoTest, RoundtripPreservesEverything) {
  const MrrCollection original = MakeCollection(800, 17);
  const std::string path = testing::TempDir() + "/mrr_roundtrip.bin";
  ASSERT_TRUE(SaveMrrCollection(original, path).ok());
  auto loaded = LoadMrrCollection(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->theta(), original.theta());
  ASSERT_EQ(loaded->num_pieces(), original.num_pieces());
  ASSERT_EQ(loaded->num_vertices(), original.num_vertices());
  for (int64_t i = 0; i < original.theta(); ++i) {
    EXPECT_EQ(loaded->root(i), original.root(i));
    for (int j = 0; j < original.num_pieces(); ++j) {
      const auto a = original.Set(i, j);
      const auto b = loaded->Set(i, j);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }
  std::remove(path.c_str());
}

TEST(MrrIoTest, ReloadedCollectionGivesIdenticalEstimates) {
  const MrrCollection original = MakeCollection(1500, 19);
  const std::string path = testing::TempDir() + "/mrr_estimates.bin";
  ASSERT_TRUE(SaveMrrCollection(original, path).ok());
  auto loaded = LoadMrrCollection(path);
  ASSERT_TRUE(loaded.ok());
  const LogisticAdoptionModel model(2.0, 1.0);
  AssignmentPlan plan(3);
  plan.Add(0, 1);
  plan.Add(1, 5);
  plan.Add(2, 9);
  EXPECT_DOUBLE_EQ(EstimateAdoptionUtility(original, model, plan),
                   EstimateAdoptionUtility(*loaded, model, plan));
  std::remove(path.c_str());
}

TEST(MrrIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadMrrCollection("/no/such/mrr.bin").ok());
}

TEST(MrrIoTest, GarbageRejected) {
  const std::string path = testing::TempDir() + "/mrr_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an MRR snapshot at all";
  }
  auto loaded = LoadMrrCollection(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MrrIoTest, TruncationRejected) {
  const MrrCollection original = MakeCollection(300, 23);
  const std::string path = testing::TempDir() + "/mrr_trunc.bin";
  ASSERT_TRUE(SaveMrrCollection(original, path).ok());
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const long size = static_cast<long>(in.tellg());
    in.close();
    ASSERT_EQ(truncate(path.c_str(), size / 3), 0);
  }
  EXPECT_FALSE(LoadMrrCollection(path).ok());
  std::remove(path.c_str());
}

TEST(MrrIoTest, GrownCollectionRoundTripsWithProvenance) {
  // A collection grown across two Extend calls must round-trip exactly,
  // and — because the format stores sampling provenance — the loaded
  // copy must keep growing bit-identically to the original.
  MrrCollection original = MakeCollection(300, 31);
  original.Extend(SharedPieces(), 700);
  const std::string path = testing::TempDir() + "/mrr_grown.bin";
  ASSERT_TRUE(SaveMrrCollection(original, path).ok());
  auto loaded = LoadMrrCollection(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->theta(), original.theta());
  EXPECT_TRUE(loaded->extendable());
  EXPECT_EQ(loaded->base_seed(), original.base_seed());
  EXPECT_EQ(loaded->model(), original.model());
  for (int64_t i = 0; i < original.theta(); ++i) {
    EXPECT_EQ(loaded->root(i), original.root(i));
    for (int j = 0; j < original.num_pieces(); ++j) {
      const auto a = original.Set(i, j);
      const auto b = loaded->Set(i, j);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }

  // save -> load -> Extend == Extend on the original.
  original.Extend(SharedPieces(), 1200);
  loaded->Extend(SharedPieces(), 1200);
  for (int64_t i = 700; i < 1200; ++i) {
    EXPECT_EQ(loaded->root(i), original.root(i));
    for (int j = 0; j < original.num_pieces(); ++j) {
      const auto a = original.Set(i, j);
      const auto b = loaded->Set(i, j);
      ASSERT_EQ(a.size(), b.size()) << i;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << i;
    }
  }
  std::remove(path.c_str());
}

TEST(MrrIoTest, MalformedOffsetsRejected) {
  const MrrCollection original = MakeCollection(50, 37);
  const std::string path = testing::TempDir() + "/mrr_badoff.bin";
  ASSERT_TRUE(SaveMrrCollection(original, path).ok());

  // Header layout (v2): magic(8) theta(8) pieces(4) n(4) seed(8)
  // model(4) extendable(4), then roots [len(8) + data], then offsets
  // [len(8) + data]. Corrupt the first offset to a non-zero value and
  // a middle offset to break monotonicity; both must come back as
  // InvalidArgument statuses, never a crash.
  const std::streamoff header = 8 + 8 + 4 + 4 + 8 + 4 + 4;
  const std::streamoff roots_bytes =
      8 + static_cast<std::streamoff>(original.theta()) * sizeof(VertexId);
  const std::streamoff offsets_data = header + roots_bytes + 8;
  for (const auto& [index, value] :
       std::vector<std::pair<int64_t, int64_t>>{{0, 5}, {10, -3}}) {
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(offsets_data + index * 8);
    f.write(reinterpret_cast<const char*>(&value), sizeof(value));
    f.close();
    auto loaded = LoadMrrCollection(path);
    ASSERT_FALSE(loaded.ok()) << "offset[" << index << "] = " << value;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    // Restore the file for the next corruption round.
    ASSERT_TRUE(SaveMrrCollection(original, path).ok());
  }
  std::remove(path.c_str());
}

TEST(MrrIoTest, FromPartsBuildsUsableIndex) {
  // Hand-rolled minimal collection: 2 samples, 1 piece, 3 vertices.
  MrrCollection mc = MrrCollection::FromParts(
      2, 1, 3, /*roots=*/{0, 2}, /*offsets=*/{0, 2, 3},
      /*nodes=*/{0, 1, 2});
  EXPECT_EQ(mc.theta(), 2);
  EXPECT_EQ(mc.SamplesContaining(0, 1).size(), 1u);
  EXPECT_EQ(mc.SamplesContaining(0, 1)[0], 0);
  EXPECT_EQ(mc.SamplesContaining(0, 2).size(), 1u);
  EXPECT_EQ(mc.SamplesContaining(0, 2)[0], 1);
}

// ------------------------------------------------ store snapshot round-trip

std::shared_ptr<const std::vector<InfluenceGraph>> SharedPiecesPtr() {
  // Non-owning alias of the process-lifetime test pieces.
  return std::shared_ptr<const std::vector<InfluenceGraph>>(
      std::shared_ptr<const std::vector<InfluenceGraph>>(),
      &SharedPieces());
}

TEST(SampleStoreIoTest, StoreSnapshotRoundTripsAndKeepsGrowing) {
  SampleStore::Options options;
  options.theta = 600;
  options.seed = 29;
  auto store = SampleStore::Create(SharedPiecesPtr(), options);
  ASSERT_TRUE(store->Grow(1'200).ok());  // stores may be saved mid-life
  const std::string path = testing::TempDir() + "/store_snapshot.bin";
  ASSERT_TRUE(SaveSampleStore(*store, path).ok());

  auto loaded = LoadSampleStore(path, SharedPiecesPtr());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SampleSnapshot original = store->snapshot();
  const SampleSnapshot reloaded = (*loaded)->snapshot();
  ASSERT_EQ(reloaded.mrr->theta(), 1'200);
  ASSERT_NE(reloaded.holdout, nullptr);
  EXPECT_EQ(reloaded.holdout->theta(), 1'200);
  for (int64_t i = 0; i < original.mrr->theta(); ++i) {
    ASSERT_EQ(reloaded.mrr->root(i), original.mrr->root(i));
    for (int j = 0; j < original.mrr->num_pieces(); ++j) {
      const auto a = original.mrr->Set(i, j);
      const auto b = reloaded.mrr->Set(i, j);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
  }
  // Provenance round-trips: growing the loaded store continues the
  // exact same sample stream as growing the original.
  ASSERT_TRUE((*loaded)->CanGrow());
  ASSERT_TRUE((*loaded)->Grow(2'400).ok());
  ASSERT_TRUE(store->Grow(2'400).ok());
  const SampleSnapshot grown_a = store->snapshot();
  const SampleSnapshot grown_b = (*loaded)->snapshot();
  for (int64_t i = 0; i < 2'400; ++i) {
    ASSERT_EQ(grown_a.mrr->root(i), grown_b.mrr->root(i)) << i;
  }
  std::remove(path.c_str());
}

TEST(SampleStoreIoTest, LoadWithoutPiecesIsFrozen) {
  SampleStore::Options options;
  options.theta = 300;
  options.holdout_theta = 0;
  options.seed = 31;
  auto store = SampleStore::Create(SharedPiecesPtr(), options);
  const std::string path = testing::TempDir() + "/store_frozen.bin";
  ASSERT_TRUE(SaveSampleStore(*store, path).ok());
  auto loaded = LoadSampleStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->theta(), 300);
  EXPECT_FALSE((*loaded)->has_holdout());
  EXPECT_FALSE((*loaded)->CanGrow());
  EXPECT_EQ((*loaded)->Grow(600).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SampleStoreIoTest, RejectsForeignAndGarbageFiles) {
  EXPECT_FALSE(LoadSampleStore("/no/such/store.bin").ok());

  // A bare collection file is not a store snapshot.
  const MrrCollection collection = MakeCollection(100, 37);
  const std::string path = testing::TempDir() + "/store_foreign.bin";
  ASSERT_TRUE(SaveMrrCollection(collection, path).ok());
  const auto as_store = LoadSampleStore(path);
  ASSERT_FALSE(as_store.ok());
  EXPECT_EQ(as_store.status().code(), StatusCode::kInvalidArgument);

  std::ofstream(path, std::ios::binary) << "OIPASTO1 but then garbage";
  EXPECT_FALSE(LoadSampleStore(path).ok());
  std::remove(path.c_str());
}

TEST(MrrIoTest, InjectedIoFaultsSurfaceAsStatusesNotAborts) {
  const MrrCollection collection = MakeCollection(100, 41);
  const std::string path = testing::TempDir() + "/mrr_faulted.bin";
  ASSERT_TRUE(SaveMrrCollection(collection, path).ok());

  // Every io entry point refuses deterministically while armed and
  // recovers the moment the injector is disabled. The on-disk file is
  // untouched by a faulted save (the fault fires before any write).
  ASSERT_TRUE(FaultInjector::Configure("io.save=1.0,io.load=1.0", 1).ok());
  const Status save = SaveMrrCollection(collection, path);
  EXPECT_EQ(save.code(), StatusCode::kInternal);
  EXPECT_NE(save.message().find("io.save"), std::string::npos);
  EXPECT_EQ(LoadMrrCollection(path).status().code(),
            StatusCode::kInternal);

  auto store = SampleStore::Adopt(
      nullptr, std::make_shared<const MrrCollection>(MakeCollection(50, 43)),
      nullptr);
  const std::string store_path = testing::TempDir() + "/store_faulted.bin";
  EXPECT_EQ(SaveSampleStore(*store, store_path).code(),
            StatusCode::kInternal);
  EXPECT_EQ(LoadSampleStore(path).status().code(), StatusCode::kInternal);
  EXPECT_GE(FaultInjector::InjectedCount(), 4);

  FaultInjector::Disable();
  EXPECT_TRUE(LoadMrrCollection(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oipa
