#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/generators.h"
#include "oipa/adoption.h"
#include "rrset/mrr_io.h"
#include "topic/campaign.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

MrrCollection MakeCollection(int64_t theta, uint64_t seed) {
  static const Graph* graph =
      new Graph(GenerateErdosRenyi(40, 0.1, 7));
  static const EdgeTopicProbs* probs = new EdgeTopicProbs(
      AssignWeightedCascadeTopics(*graph, 4, 2.0, 11));
  Rng rng(13);
  static const Campaign campaign =
      Campaign::SampleUniformPieces(3, 4, &rng);
  static const std::vector<InfluenceGraph>* pieces =
      new std::vector<InfluenceGraph>(
          BuildPieceGraphs(*graph, *probs, campaign));
  return MrrCollection::Generate(*pieces, theta, seed);
}

TEST(MrrIoTest, RoundtripPreservesEverything) {
  const MrrCollection original = MakeCollection(800, 17);
  const std::string path = testing::TempDir() + "/mrr_roundtrip.bin";
  ASSERT_TRUE(SaveMrrCollection(original, path).ok());
  auto loaded = LoadMrrCollection(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->theta(), original.theta());
  ASSERT_EQ(loaded->num_pieces(), original.num_pieces());
  ASSERT_EQ(loaded->num_vertices(), original.num_vertices());
  for (int64_t i = 0; i < original.theta(); ++i) {
    EXPECT_EQ(loaded->root(i), original.root(i));
    for (int j = 0; j < original.num_pieces(); ++j) {
      const auto a = original.Set(i, j);
      const auto b = loaded->Set(i, j);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }
  std::remove(path.c_str());
}

TEST(MrrIoTest, ReloadedCollectionGivesIdenticalEstimates) {
  const MrrCollection original = MakeCollection(1500, 19);
  const std::string path = testing::TempDir() + "/mrr_estimates.bin";
  ASSERT_TRUE(SaveMrrCollection(original, path).ok());
  auto loaded = LoadMrrCollection(path);
  ASSERT_TRUE(loaded.ok());
  const LogisticAdoptionModel model(2.0, 1.0);
  AssignmentPlan plan(3);
  plan.Add(0, 1);
  plan.Add(1, 5);
  plan.Add(2, 9);
  EXPECT_DOUBLE_EQ(EstimateAdoptionUtility(original, model, plan),
                   EstimateAdoptionUtility(*loaded, model, plan));
  std::remove(path.c_str());
}

TEST(MrrIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadMrrCollection("/no/such/mrr.bin").ok());
}

TEST(MrrIoTest, GarbageRejected) {
  const std::string path = testing::TempDir() + "/mrr_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an MRR snapshot at all";
  }
  auto loaded = LoadMrrCollection(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MrrIoTest, TruncationRejected) {
  const MrrCollection original = MakeCollection(300, 23);
  const std::string path = testing::TempDir() + "/mrr_trunc.bin";
  ASSERT_TRUE(SaveMrrCollection(original, path).ok());
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const long size = static_cast<long>(in.tellg());
    in.close();
    ASSERT_EQ(truncate(path.c_str(), size / 3), 0);
  }
  EXPECT_FALSE(LoadMrrCollection(path).ok());
  std::remove(path.c_str());
}

TEST(MrrIoTest, FromPartsBuildsUsableIndex) {
  // Hand-rolled minimal collection: 2 samples, 1 piece, 3 vertices.
  MrrCollection mc = MrrCollection::FromParts(
      2, 1, 3, /*roots=*/{0, 2}, /*offsets=*/{0, 2, 3},
      /*nodes=*/{0, 1, 2});
  EXPECT_EQ(mc.theta(), 2);
  EXPECT_EQ(mc.SamplesContaining(0, 1).size(), 1u);
  EXPECT_EQ(mc.SamplesContaining(0, 1)[0], 0);
  EXPECT_EQ(mc.SamplesContaining(0, 2).size(), 1u);
  EXPECT_EQ(mc.SamplesContaining(0, 2)[0], 1);
}

}  // namespace
}  // namespace oipa
