// Unit tests for the deterministic fault injector (util/fault_injector.h):
// seeded reproducibility, fire-on-Nth-call rules, probability bounds,
// spec parsing, and the disabled fast path.

#include "util/fault_injector.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"

namespace oipa {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Disable(); }
};

TEST_F(FaultInjectorTest, DisabledNeverFails) {
  FaultInjector::Disable();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(FaultInjector::ShouldFail("serve.read"));
  }
  EXPECT_EQ(FaultInjector::InjectedCount(), 0);
}

TEST_F(FaultInjectorTest, UnarmedSiteNeverFails) {
  ASSERT_TRUE(FaultInjector::Configure("serve.read=1.0", 1).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultInjector::ShouldFail("serve.write"));
  }
}

TEST_F(FaultInjectorTest, ProbabilityOneAlwaysFails) {
  ASSERT_TRUE(FaultInjector::Configure("io.save=1.0", 7).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(FaultInjector::ShouldFail("io.save"));
  }
  EXPECT_EQ(FaultInjector::InjectedCount(), 50);
}

TEST_F(FaultInjectorTest, ProbabilityZeroNeverFails) {
  ASSERT_TRUE(FaultInjector::Configure("io.save=0.0", 7).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(FaultInjector::ShouldFail("io.save"));
  }
}

TEST_F(FaultInjectorTest, NthCallFiresExactlyOnce) {
  ASSERT_TRUE(FaultInjector::Configure("store.grow=@3", 1).ok());
  std::vector<bool> fired;
  fired.reserve(10);
  for (int i = 0; i < 10; ++i) {
    fired.push_back(FaultInjector::ShouldFail("store.grow"));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[i], i == 2) << "call " << i + 1;
  }
  EXPECT_EQ(FaultInjector::InjectedCount(), 1);
}

TEST_F(FaultInjectorTest, SameSeedSameFaultSchedule) {
  auto run = [](uint64_t seed) {
    EXPECT_TRUE(FaultInjector::Configure("serve.read=0.2", seed).ok());
    std::vector<bool> fired;
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) {
      fired.push_back(FaultInjector::ShouldFail("serve.read"));
    }
    return fired;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  const std::vector<bool> c = run(43);
  EXPECT_EQ(a, b) << "same seed must fire the same call ordinals";
  EXPECT_NE(a, c) << "a different seed should fire a different schedule";
}

TEST_F(FaultInjectorTest, ProbabilityRateIsRoughlyHonored) {
  ASSERT_TRUE(FaultInjector::Configure("serve.write=0.1", 11).ok());
  int fired = 0;
  constexpr int kCalls = 5000;
  for (int i = 0; i < kCalls; ++i) {
    if (FaultInjector::ShouldFail("serve.write")) ++fired;
  }
  // 10% +/- 4 sigma of a binomial(5000, 0.1): [415, 585].
  EXPECT_GT(fired, 400);
  EXPECT_LT(fired, 600);
  EXPECT_EQ(FaultInjector::InjectedCount(), fired);
}

TEST_F(FaultInjectorTest, MultipleSitesTrackIndependentCounters) {
  ASSERT_TRUE(FaultInjector::Configure("a=@1,b=@2", 1).ok());
  EXPECT_TRUE(FaultInjector::ShouldFail("a"));
  EXPECT_FALSE(FaultInjector::ShouldFail("b"));
  EXPECT_TRUE(FaultInjector::ShouldFail("b"));
  const auto stats = FaultInjector::GetSiteStats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].site, "a");
  EXPECT_EQ(stats[0].calls, 1);
  EXPECT_EQ(stats[0].injected, 1);
  EXPECT_EQ(stats[1].site, "b");
  EXPECT_EQ(stats[1].calls, 2);
  EXPECT_EQ(stats[1].injected, 1);
}

TEST_F(FaultInjectorTest, ConfigureRejectsMalformedSpecs) {
  for (const char* bad :
       {"serve.read", "=0.5", "serve.read=", "serve.read=1.5",
        "serve.read=-0.1", "serve.read=abc", "serve.read=@0",
        "serve.read=@-2", "serve.read=@x"}) {
    const Status status = FaultInjector::Configure(bad, 1);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST_F(FaultInjectorTest, EmptySpecDisables) {
  ASSERT_TRUE(FaultInjector::Configure("io.load=1.0", 1).ok());
  EXPECT_TRUE(FaultInjector::ShouldFail("io.load"));
  ASSERT_TRUE(FaultInjector::Configure("", 1).ok());
  EXPECT_FALSE(FaultInjector::ShouldFail("io.load"));
  EXPECT_EQ(FaultInjector::InjectedCount(), 0);
}

TEST_F(FaultInjectorTest, ConcurrentCallsStayConsistent) {
  ASSERT_TRUE(FaultInjector::Configure("shared=0.5", 3).ok());
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        FaultInjector::ShouldFail("shared");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = FaultInjector::GetSiteStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, kThreads * kCallsPerThread);
  EXPECT_EQ(stats[0].injected, FaultInjector::InjectedCount());
  // The decision stream is a pure function of (seed, site, call index),
  // so the total across any interleaving of the same 4000 calls matches
  // a serial replay with the same seed.
  ASSERT_TRUE(FaultInjector::Configure("shared=0.5", 3).ok());
  int serial = 0;
  for (int i = 0; i < kThreads * kCallsPerThread; ++i) {
    if (FaultInjector::ShouldFail("shared")) ++serial;
  }
  EXPECT_EQ(serial, stats[0].injected);
}

TEST_F(FaultInjectorTest, InjectedFaultStatusNamesTheSite) {
  const Status status = InjectedFault("store.acquire");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "injected fault at store.acquire");
}

TEST_F(FaultInjectorTest, ConfigureFromEnvIsNoOpWhenUnset) {
  ::unsetenv("OIPA_FAULTS");
  ASSERT_TRUE(FaultInjector::ConfigureFromEnv().ok());
  EXPECT_FALSE(FaultInjector::ShouldFail("serve.read"));
}

TEST_F(FaultInjectorTest, ConfigureFromEnvReadsSpecAndSeed) {
  ::setenv("OIPA_FAULTS", "serve.read=@1", 1);
  ::setenv("OIPA_FAULTS_SEED", "99", 1);
  ASSERT_TRUE(FaultInjector::ConfigureFromEnv().ok());
  EXPECT_TRUE(FaultInjector::ShouldFail("serve.read"));
  ::setenv("OIPA_FAULTS_SEED", "not-a-number", 1);
  EXPECT_EQ(FaultInjector::ConfigureFromEnv().code(),
            StatusCode::kInvalidArgument);
  ::unsetenv("OIPA_FAULTS");
  ::unsetenv("OIPA_FAULTS_SEED");
}

}  // namespace
}  // namespace oipa
