// Behavioral tests of the request/response planning surface: the solver
// outcomes formerly covered through the OipaPlanner facade, now running
// through PlanningContext + SolverRegistry (oipa/api/). Registry and
// error-path coverage lives in api_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "graph/generators.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "rrset/mrr_collection.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

class PlanningFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_shared<Graph>(GenerateHolmeKim(500, 4, 0.4, 7));
    probs_ = std::make_shared<EdgeTopicProbs>(
        AssignWeightedCascadeTopics(*graph_, 6, 2.0, 11));
    Rng rng(13);
    campaign_ = std::make_shared<Campaign>(
        Campaign::SampleUniformPieces(3, 6, &rng));
    for (VertexId v = 0; v < graph_->num_vertices(); v += 5) {
      pool_.push_back(v);
    }
    ContextOptions options;
    options.theta = 10'000;
    options.seed = 17;
    auto ctx = PlanningContext::Create(
        graph_, probs_, campaign_, LogisticAdoptionModel(2.0, 1.0),
        options);
    ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
    context_ = *ctx;
  }

  PlanResponse MustSolve(const std::string& solver, int budget) const {
    PlanRequest request;
    request.solver = solver;
    request.pool = pool_;
    request.budgets = {budget};
    StatusOr<PlanResponse> response = Solve(*context_, request);
    EXPECT_TRUE(response.ok())
        << solver << ": " << response.status().ToString();
    return *std::move(response);
  }

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const EdgeTopicProbs> probs_;
  std::shared_ptr<const Campaign> campaign_;
  std::vector<VertexId> pool_;
  std::shared_ptr<const PlanningContext> context_;
};

TEST_F(PlanningFixture, SolversProduceFeasiblePlans) {
  for (const char* solver : {"bab", "bab-p", "im", "tim"}) {
    const PlanResponse r = MustSolve(solver, 6);
    EXPECT_LE(r.plan.size(), 6) << solver;
    EXPECT_GT(r.utility, 0.0) << solver;
    EXPECT_GT(r.holdout_utility, 0.0) << solver;
    for (int j = 0; j < r.plan.num_pieces(); ++j) {
      for (VertexId v : r.plan.SeedSet(j)) {
        EXPECT_EQ(v % 5, 0) << solver;  // pool membership
      }
    }
  }
}

TEST_F(PlanningFixture, ResponsesCarryTheSolverName) {
  EXPECT_EQ(MustSolve("bab", 3).solver, "bab");
  EXPECT_EQ(MustSolve("bab-p", 3).solver, "bab-p");
  EXPECT_EQ(MustSolve("im", 3).solver, "im");
  EXPECT_EQ(MustSolve("tim", 3).solver, "tim");
}

TEST_F(PlanningFixture, BabBeatsBaselinesInSample) {
  const PlanResponse bab = MustSolve("bab", 8);
  const PlanResponse im = MustSolve("im", 8);
  const PlanResponse tim = MustSolve("tim", 8);
  EXPECT_GE(bab.utility * 1.001, im.utility);
  EXPECT_GE(bab.utility * 1.001, tim.utility);
}

TEST_F(PlanningFixture, EvaluateConsistentWithSolvers) {
  const PlanResponse bab = MustSolve("bab", 5);
  const auto re = context_->Evaluate(bab.plan, "re-eval");
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  EXPECT_NEAR(re->utility, bab.utility, 1e-9);
  EXPECT_NEAR(re->holdout_utility, bab.holdout_utility, 1e-9);
  EXPECT_EQ(re->solver, "re-eval");
}

TEST_F(PlanningFixture, HoldoutCloseToSimulation) {
  const PlanResponse bab_p = MustSolve("bab-p", 6);
  const double sim = context_->SimulateUtility(bab_p.plan, 3000, 19);
  EXPECT_NEAR(sim, bab_p.holdout_utility,
              0.2 * std::max(1.0, bab_p.holdout_utility));
}

// ------------------------------------------------------------ LT mode

TEST(LtMrrTest, GenerateAndSolveUnderLinearThreshold) {
  const Graph graph = GenerateHolmeKim(300, 4, 0.4, 23);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, 5, 2.0, 29);
  Rng rng(31);
  const Campaign campaign = Campaign::SampleUniformPieces(2, 5, &rng);
  ContextOptions options;
  options.theta = 8'000;
  options.diffusion = DiffusionModel::kLinearThreshold;
  const auto ctx = PlanningContext::Borrow(
      graph, probs, campaign, LogisticAdoptionModel(2.0, 1.0), options);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  PlanRequest request;
  request.solver = "bab-p";
  for (VertexId v = 0; v < 300; v += 4) request.pool.push_back(v);
  request.budgets = {5};
  const auto r = Solve(**ctx, request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r->plan.size(), 5);
  EXPECT_GT(r->utility, 0.0);
}

TEST(LtMrrTest, LtSetsArePaths) {
  const Graph graph = GenerateErdosRenyi(40, 0.1, 37);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, 3, 2.0, 41);
  Rng rng(43);
  const Campaign campaign = Campaign::SampleUniformPieces(2, 3, &rng);
  const auto pieces = BuildPieceGraphs(graph, probs, campaign);
  const MrrCollection mrr = MrrCollection::Generate(
      pieces, 500, 47, DiffusionModel::kLinearThreshold);
  for (int64_t i = 0; i < mrr.theta(); ++i) {
    for (int j = 0; j < 2; ++j) {
      const auto set = mrr.Set(i, j);
      ASSERT_GE(set.size(), 1u);
      EXPECT_EQ(set[0], mrr.root(i));
      // Consecutive members connected by reverse edges.
      for (size_t t = 0; t + 1 < set.size(); ++t) {
        bool linked = false;
        for (VertexId nb : graph.InNeighbors(set[t])) {
          if (nb == set[t + 1]) linked = true;
        }
        EXPECT_TRUE(linked);
      }
    }
  }
}

TEST(LtMrrTest, IcAndLtDiffer) {
  // Same seed, different diffusion models: the collections should not be
  // identical on a graph with multi-parent vertices.
  const Graph graph = GenerateErdosRenyi(40, 0.15, 53);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, 3, 2.0, 59);
  Rng rng(61);
  const Campaign campaign = Campaign::SampleUniformPieces(2, 3, &rng);
  const auto pieces = BuildPieceGraphs(graph, probs, campaign);
  const MrrCollection ic = MrrCollection::Generate(pieces, 400, 67);
  const MrrCollection lt = MrrCollection::Generate(
      pieces, 400, 67, DiffusionModel::kLinearThreshold);
  EXPECT_NE(ic.TotalSize(), lt.TotalSize());
}

}  // namespace
}  // namespace oipa
