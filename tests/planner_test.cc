#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "oipa/planner.h"
#include "rrset/mrr_collection.h"
#include "topic/prob_models.h"
#include "util/random.h"

namespace oipa {
namespace {

class PlannerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<Graph>(GenerateHolmeKim(500, 4, 0.4, 7));
    probs_ = std::make_unique<EdgeTopicProbs>(
        AssignWeightedCascadeTopics(*graph_, 6, 2.0, 11));
    Rng rng(13);
    campaign_ = Campaign::SampleUniformPieces(3, 6, &rng);
    for (VertexId v = 0; v < graph_->num_vertices(); v += 5) {
      pool_.push_back(v);
    }
    PlannerOptions options;
    options.theta = 10'000;
    options.seed = 17;
    planner_ = std::make_unique<OipaPlanner>(
        *graph_, *probs_, campaign_, LogisticAdoptionModel(2.0, 1.0),
        options);
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<EdgeTopicProbs> probs_;
  Campaign campaign_;
  std::vector<VertexId> pool_;
  std::unique_ptr<OipaPlanner> planner_;
};

TEST_F(PlannerFixture, SolversProduceFeasiblePlans) {
  for (const PlanReport& r :
       {planner_->SolveBab(pool_, 6), planner_->SolveBabP(pool_, 6),
        planner_->SolveImBaseline(pool_, 6),
        planner_->SolveTimBaseline(pool_, 6)}) {
    EXPECT_LE(r.plan.size(), 6) << r.method;
    EXPECT_GT(r.utility, 0.0) << r.method;
    EXPECT_GT(r.holdout_utility, 0.0) << r.method;
    for (int j = 0; j < r.plan.num_pieces(); ++j) {
      for (VertexId v : r.plan.SeedSet(j)) {
        EXPECT_EQ(v % 5, 0) << r.method;  // pool membership
      }
    }
  }
}

TEST_F(PlannerFixture, MethodLabelsSet) {
  EXPECT_EQ(planner_->SolveBab(pool_, 3).method, "BAB");
  EXPECT_EQ(planner_->SolveBabP(pool_, 3).method, "BAB-P");
  EXPECT_EQ(planner_->SolveImBaseline(pool_, 3).method, "IM");
  EXPECT_EQ(planner_->SolveTimBaseline(pool_, 3).method, "TIM");
}

TEST_F(PlannerFixture, BabBeatsBaselinesInSample) {
  const PlanReport bab = planner_->SolveBab(pool_, 8);
  const PlanReport im = planner_->SolveImBaseline(pool_, 8);
  const PlanReport tim = planner_->SolveTimBaseline(pool_, 8);
  EXPECT_GE(bab.utility * 1.001, im.utility);
  EXPECT_GE(bab.utility * 1.001, tim.utility);
}

TEST_F(PlannerFixture, EvaluatePlanConsistentWithSolvers) {
  const PlanReport bab = planner_->SolveBab(pool_, 5);
  const PlanReport re = planner_->EvaluatePlan(bab.plan, "re-eval");
  EXPECT_NEAR(re.utility, bab.utility, 1e-9);
  EXPECT_NEAR(re.holdout_utility, bab.holdout_utility, 1e-9);
  EXPECT_EQ(re.method, "re-eval");
}

TEST_F(PlannerFixture, HoldoutCloseToSimulation) {
  const PlanReport bab = planner_->SolveBabP(pool_, 6);
  const double sim = planner_->SimulateUtility(bab.plan, 3000, 19);
  EXPECT_NEAR(sim, bab.holdout_utility,
              0.2 * std::max(1.0, bab.holdout_utility));
}

// ------------------------------------------------------------ LT mode

TEST(LtMrrTest, GenerateAndSolveUnderLinearThreshold) {
  const Graph graph = GenerateHolmeKim(300, 4, 0.4, 23);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, 5, 2.0, 29);
  Rng rng(31);
  const Campaign campaign = Campaign::SampleUniformPieces(2, 5, &rng);
  PlannerOptions options;
  options.theta = 8'000;
  options.diffusion = DiffusionModel::kLinearThreshold;
  const OipaPlanner planner(graph, probs, campaign,
                            LogisticAdoptionModel(2.0, 1.0), options);
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < 300; v += 4) pool.push_back(v);
  const PlanReport r = planner.SolveBabP(pool, 5);
  EXPECT_LE(r.plan.size(), 5);
  EXPECT_GT(r.utility, 0.0);
}

TEST(LtMrrTest, LtSetsArePaths) {
  const Graph graph = GenerateErdosRenyi(40, 0.1, 37);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, 3, 2.0, 41);
  Rng rng(43);
  const Campaign campaign = Campaign::SampleUniformPieces(2, 3, &rng);
  const auto pieces = BuildPieceGraphs(graph, probs, campaign);
  const MrrCollection mrr = MrrCollection::Generate(
      pieces, 500, 47, DiffusionModel::kLinearThreshold);
  for (int64_t i = 0; i < mrr.theta(); ++i) {
    for (int j = 0; j < 2; ++j) {
      const auto set = mrr.Set(i, j);
      ASSERT_GE(set.size(), 1u);
      EXPECT_EQ(set[0], mrr.root(i));
      // Consecutive members connected by reverse edges.
      for (size_t t = 0; t + 1 < set.size(); ++t) {
        bool linked = false;
        for (VertexId nb : graph.InNeighbors(set[t])) {
          if (nb == set[t + 1]) linked = true;
        }
        EXPECT_TRUE(linked);
      }
    }
  }
}

TEST(LtMrrTest, IcAndLtDiffer) {
  // Same seed, different diffusion models: the collections should not be
  // identical on a graph with multi-parent vertices.
  const Graph graph = GenerateErdosRenyi(40, 0.15, 53);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, 3, 2.0, 59);
  Rng rng(61);
  const Campaign campaign = Campaign::SampleUniformPieces(2, 3, &rng);
  const auto pieces = BuildPieceGraphs(graph, probs, campaign);
  const MrrCollection ic = MrrCollection::Generate(pieces, 400, 67);
  const MrrCollection lt = MrrCollection::Generate(
      pieces, 400, 67, DiffusionModel::kLinearThreshold);
  EXPECT_NE(ic.TotalSize(), lt.TotalSize());
}

}  // namespace
}  // namespace oipa
