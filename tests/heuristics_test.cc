#include <gtest/gtest.h>

#include <algorithm>

#include "diffusion/cascade.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "im/heuristics.h"
#include "im/imm.h"
#include "topic/influence_graph.h"

namespace oipa {
namespace {

TEST(HighDegreeTest, PicksHubsInOrder) {
  const Graph g = MakeStar(8);  // 0 has degree 8, leaves 0
  const auto seeds = HighDegreeSeeds(g, 3);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0], 0);
  // Ties among leaves broken by id.
  EXPECT_EQ(seeds[1], 1);
  EXPECT_EQ(seeds[2], 2);
}

TEST(HighDegreeTest, RespectsCandidatePool) {
  const Graph g = MakeStar(8);
  const auto seeds = HighDegreeSeeds(g, 2, {3, 5, 7});
  ASSERT_EQ(seeds.size(), 2u);
  for (VertexId s : seeds) {
    EXPECT_TRUE(s == 3 || s == 5 || s == 7);
  }
}

TEST(HighDegreeTest, KLargerThanPool) {
  const Graph g = MakePath(3);
  EXPECT_EQ(HighDegreeSeeds(g, 10).size(), 3u);
}

TEST(DegreeDiscountTest, FirstPickIsMaxDegree) {
  const Graph g = MakeStar(8);
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.1f);
  const auto seeds = DegreeDiscountSeeds(ig, 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0);
}

TEST(DegreeDiscountTest, AvoidsClusteredSeeds) {
  // Two disjoint stars with hubs 0 and 10; a greedy-by-degree pick of
  // {hub0, neighbor-of-hub0} is worse than {hub0, hub1} and discounting
  // must find the latter.
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 9; ++leaf) b.AddUndirectedEdge(0, leaf);
  for (VertexId leaf = 11; leaf <= 18; ++leaf) {
    b.AddUndirectedEdge(10, leaf);
  }
  const Graph g = b.Build();
  const InfluenceGraph ig = InfluenceGraph::Uniform(g, 0.2f);
  const auto seeds = DegreeDiscountSeeds(ig, 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_TRUE((seeds[0] == 0 && seeds[1] == 10) ||
              (seeds[0] == 10 && seeds[1] == 0))
      << seeds[0] << "," << seeds[1];
}

TEST(DegreeDiscountTest, NoDuplicates) {
  const Graph g = GenerateBarabasiAlbert(300, 3, 17);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  auto seeds = DegreeDiscountSeeds(ig, 20);
  EXPECT_EQ(seeds.size(), 20u);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_TRUE(std::adjacent_find(seeds.begin(), seeds.end()) ==
              seeds.end());
}

TEST(RandomSeedsTest, DeterministicAndInPool) {
  const Graph g = GenerateErdosRenyi(100, 0.05, 19);
  const std::vector<VertexId> pool{2, 4, 6, 8, 10, 12};
  const auto a = RandomSeeds(g, 4, 23, pool);
  const auto b = RandomSeeds(g, 4, 23, pool);
  EXPECT_EQ(a, b);
  for (VertexId s : a) {
    EXPECT_TRUE(std::find(pool.begin(), pool.end(), s) != pool.end());
  }
}

TEST(HeuristicsQualityTest, OrderingUnderSimulation) {
  // On a power-law graph with weighted-cascade probabilities the classic
  // ordering is RIS-greedy >= degree-discount >= high-degree >= random.
  // We assert the endpoints strictly and the middle loosely.
  const Graph g = GenerateBarabasiAlbert(800, 3, 29);
  const InfluenceGraph ig = InfluenceGraph::WeightedCascade(g);
  const int k = 10;
  const auto ris = FixedThetaRis(ig, k, 20'000, 31).seeds;
  const auto dd = DegreeDiscountSeeds(ig, k);
  const auto hd = HighDegreeSeeds(g, k);
  const auto rnd = RandomSeeds(g, k, 37);

  const double s_ris = EstimateSpread(ig, ris, 5000, 41);
  const double s_dd = EstimateSpread(ig, dd, 5000, 41);
  const double s_hd = EstimateSpread(ig, hd, 5000, 41);
  const double s_rnd = EstimateSpread(ig, rnd, 5000, 41);

  EXPECT_GE(s_ris * 1.05, s_dd);
  EXPECT_GE(s_dd * 1.10, s_hd);   // DD >= HD with slack
  EXPECT_GT(s_hd, 1.5 * s_rnd);   // any hub beats random clearly
}

}  // namespace
}  // namespace oipa
