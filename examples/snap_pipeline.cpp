// File-based workflow: everything a practitioner does when their data
// lives on disk rather than in a generator.
//
//   1. Ingest a SNAP-format edge list (we synthesize one first so the
//      example is self-contained; point --edges at your own file).
//   2. Learn topic-aware probabilities from a propagation log.
//   3. Cache the dataset and the MRR samples as binary snapshots.
//   4. Plan through PlanningContext + SolverRegistry and report
//      in-sample/holdout/simulated utilities.
//
// Run:  ./snap_pipeline [--edges=path] [--workdir=/tmp] [--k=10]

#include <cstdio>
#include <string>

#include "data/datasets.h"
#include "data/serialization.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/metrics.h"
#include "learn/action_log.h"
#include "learn/tic_learner.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "rrset/mrr_io.h"
#include "topic/prob_models.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace oipa;
  FlagParser flags(argc, argv);
  const std::string workdir = flags.GetString("workdir", "/tmp");
  const int k = static_cast<int>(flags.GetInt("k", 10));
  const int num_topics = 8;

  // 1. Edge list: use --edges if given, otherwise synthesize one.
  std::string edges_path = flags.GetString("edges", "");
  if (edges_path.empty()) {
    edges_path = workdir + "/snap_example_edges.txt";
    const Graph synthetic = GenerateHolmeKim(1200, 5, 0.4, 3);
    OIPA_CHECK_OK(SaveEdgeListFile(synthetic, edges_path));
    std::printf("synthesized edge list at %s\n", edges_path.c_str());
  }
  auto loaded = LoadEdgeListFile(edges_path);
  OIPA_CHECK(loaded.ok()) << loaded.status().ToString();
  const Graph& graph = *loaded;
  const DegreeStats stats = ComputeOutDegreeStats(graph);
  std::printf(
      "graph: %d vertices, %lld edges, mean degree %.2f, "
      "power-law alpha %.2f, largest WCC %lld\n",
      graph.num_vertices(), static_cast<long long>(graph.num_edges()),
      stats.mean, stats.power_law_alpha,
      static_cast<long long>(LargestComponentSize(graph)));

  // 2. Learn probabilities from a (synthetic) propagation log — in a
  //    real deployment this is your observed action log.
  const EdgeTopicProbs truth =
      AssignWeightedCascadeTopics(graph, num_topics, 2.5, 5);
  const ActionLog log = GenerateActionLog(graph, truth, 300, 3, 7);
  std::printf("learning p(e|z) from %zu log events...\n",
              log.events.size());
  TicLearnerOptions lopts;
  lopts.iterations = 4;
  const EdgeTopicProbs learned =
      LearnTicProbabilities(graph, log, num_topics, lopts);

  // 3. Cache dataset + MRR snapshots.
  Dataset ds;
  ds.name = "snap_example";
  ds.num_topics = num_topics;
  ds.graph = std::make_unique<Graph>(graph.num_vertices(),
                                     std::vector<Edge>(graph.edges()));
  ds.probs = std::make_unique<EdgeTopicProbs>(learned);
  ds.promoter_pool =
      SamplePromoterPool(graph.num_vertices(), 0.10, 11);
  const std::string ds_path = workdir + "/snap_example_dataset.bin";
  OIPA_CHECK_OK(SaveDataset(ds, ds_path));
  std::printf("dataset snapshot: %s\n", ds_path.c_str());

  Rng rng(13);
  const Campaign campaign =
      Campaign::SampleUniformPieces(3, num_topics, &rng);
  const auto pieces = BuildPieceGraphs(graph, learned, campaign);
  const MrrCollection mrr = MrrCollection::Generate(pieces, 30'000, 17);
  const std::string mrr_path = workdir + "/snap_example_mrr.bin";
  OIPA_CHECK_OK(SaveMrrCollection(mrr, mrr_path));
  auto reloaded = LoadMrrCollection(mrr_path);
  OIPA_CHECK(reloaded.ok()) << reloaded.status().ToString();
  std::printf("MRR snapshot: %s (theta=%lld, %lld memberships)\n",
              mrr_path.c_str(), static_cast<long long>(reloaded->theta()),
              static_cast<long long>(reloaded->TotalSize()));

  // 4. Plan: one context (with a holdout for unbiased scoring), two
  //    solvers dispatched by name.
  ContextOptions popts;
  popts.theta = 30'000;
  popts.seed = 19;
  const auto context = PlanningContext::Borrow(
      graph, learned, campaign, LogisticAdoptionModel(2.0, 1.0), popts);
  OIPA_CHECK(context.ok()) << context.status().ToString();
  PlanRequest request;
  request.pool = ds.promoter_pool;
  request.budgets = {k};
  auto solve = [&](const char* solver) {
    request.solver = solver;
    StatusOr<PlanResponse> r = Solve(**context, request);
    OIPA_CHECK(r.ok()) << r.status().ToString();
    return *std::move(r);
  };
  const PlanResponse bab_p = solve("bab-p");
  const PlanResponse tim = solve("tim");
  std::printf("\n%-6s in-sample %.2f | holdout %.2f | %.3fs\n",
              bab_p.solver.c_str(), bab_p.utility, bab_p.holdout_utility,
              bab_p.seconds);
  std::printf("%-6s in-sample %.2f | holdout %.2f | %.3fs\n",
              tim.solver.c_str(), tim.utility, tim.holdout_utility,
              tim.seconds);
  std::printf("BAB-P plan simulated utility: %.2f\n",
              (*context)->SimulateUtility(bab_p.plan, 2000, 23));
  return 0;
}
