// Learning pipeline: how the paper's datasets get their probabilities.
//
//   lastfm path:  propagation log  -> TIC-style EM  -> p(e|z)
//   tweet path:   hashtag corpus   -> collapsed-Gibbs LDA -> user topic
//                 profiles -> affinity probabilities
//
// This example runs BOTH paths on synthetic ground truth and reports how
// well each recovered model supports downstream OIPA planning: the plan
// optimized on the LEARNED model is evaluated under the TRUE model and
// compared against planning with the truth itself.
//
// Run:  ./learning_pipeline [--cascades=500] [--theta=10000]

#include <cstdio>

#include "data/datasets.h"
#include "graph/generators.h"
#include "learn/action_log.h"
#include "learn/tic_learner.h"
#include "oipa/adoption.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "topic/campaign.h"
#include "topic/influence_graph.h"
#include "topic/lda.h"
#include "topic/prob_models.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using namespace oipa;

/// Optimizes a plan on `planning_probs` and reports its simulated utility
/// under `true_probs`.
double PlanAndEvaluate(const Graph& graph,
                       const EdgeTopicProbs& planning_probs,
                       const EdgeTopicProbs& true_probs,
                       const Campaign& campaign,
                       const LogisticAdoptionModel& model,
                       const std::vector<VertexId>& pool, int k,
                       int64_t theta, uint64_t seed) {
  ContextOptions context_options;
  context_options.theta = theta;
  context_options.holdout_theta = 0;  // evaluated under the truth below
  context_options.seed = seed;
  const auto context = PlanningContext::Borrow(graph, planning_probs,
                                               campaign, model,
                                               context_options);
  OIPA_CHECK(context.ok()) << context.status().ToString();
  PlanRequest request;
  request.solver = "bab-p";
  request.pool = pool;
  request.budgets = {k};
  const StatusOr<PlanResponse> res = Solve(**context, request);
  OIPA_CHECK(res.ok()) << res.status().ToString();
  const auto true_pieces = BuildPieceGraphs(graph, true_probs, campaign);
  return SimulateAdoptionUtility(true_pieces, model, res->plan, 1500,
                                 seed + 1);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int cascades = static_cast<int>(flags.GetInt("cascades", 3000));
  const int64_t theta = flags.GetInt("theta", 10'000);
  const int k = 8;

  // ---------------------------------------------------------- TIC path
  std::printf("=== Path 1 (lastfm-style): action log -> TIC EM ===\n");
  constexpr int kTopics = 6;
  const Graph graph = GenerateHolmeKim(800, 5, 0.4, 61);
  const EdgeTopicProbs truth =
      AssignWeightedCascadeTopics(graph, kTopics, 2.0, 67);

  std::printf("simulating %d item cascades...\n", cascades);
  const ActionLog log = GenerateActionLog(graph, truth, cascades, 5, 71);
  std::printf("log: %zu events over %d items\n", log.events.size(),
              log.num_items());

  TicLearnerOptions lopts;
  lopts.iterations = 5;
  const EdgeTopicProbs learned =
      LearnTicProbabilities(graph, log, kTopics, lopts);

  // Edge-level agreement between learned and true probabilities.
  std::vector<double> tvals, lvals;
  const TopicVector uniform = TopicVector::Uniform(kTopics);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    tvals.push_back(truth.PieceProb(e, uniform));
    lvals.push_back(learned.PieceProb(e, uniform));
  }
  std::printf("learned-vs-true edge probability Spearman: %.3f\n",
              SpearmanCorrelation(tvals, lvals));

  Rng rng(73);
  const Campaign campaign =
      Campaign::SampleUniformPieces(3, kTopics, &rng);
  const LogisticAdoptionModel model(2.0, 1.0);
  const std::vector<VertexId> pool =
      SamplePromoterPool(graph.num_vertices(), 0.15, 79);

  const double with_truth = PlanAndEvaluate(
      graph, truth, truth, campaign, model, pool, k, theta, 83);
  const double with_learned = PlanAndEvaluate(
      graph, learned, truth, campaign, model, pool, k, theta, 89);
  std::printf("true-utility of plan optimized on truth:   %.2f\n",
              with_truth);
  std::printf("true-utility of plan optimized on learned: %.2f "
              "(%.0f%% of the oracle plan)\n\n",
              with_learned, 100.0 * with_learned / with_truth);

  // ---------------------------------------------------------- LDA path
  std::printf("=== Path 2 (tweet-style): hashtags -> LDA -> affinity ===\n");
  constexpr int kLdaTopics = 5;
  const VertexId users = 2000;
  std::vector<TopicVector> true_mixtures;
  const Corpus corpus = GenerateSyntheticCorpus(
      users, kLdaTopics, 400, 40, 97, &true_mixtures);
  LdaOptions lda_opts;
  lda_opts.num_topics = kLdaTopics;
  lda_opts.iterations = 50;
  lda_opts.seed = 101;
  LdaModel lda(lda_opts);
  std::printf("training LDA on %lld tokens...\n",
              static_cast<long long>(corpus.num_tokens()));
  lda.Train(corpus);
  std::printf("per-token log-likelihood: %.3f\n",
              lda.TokenLogLikelihood(corpus));

  std::vector<TopicVector> profiles;
  profiles.reserve(users);
  for (int d = 0; d < users; ++d) profiles.push_back(lda.DocumentTopics(d));

  const Graph tweet_graph = GenerateRetweetForest(users, 1.4, 103);
  const EdgeTopicProbs lda_probs =
      AssignAffinityTopics(tweet_graph, profiles, 2, 1.0, 0.3);
  const EdgeTopicProbs oracle_probs =
      AssignAffinityTopics(tweet_graph, true_mixtures, 2, 1.0, 0.3);

  Rng rng2(107);
  const Campaign tweet_campaign =
      Campaign::SampleUniformPieces(3, kLdaTopics, &rng2);
  const std::vector<VertexId> tweet_pool =
      SamplePromoterPool(users, 0.10, 109);
  const double oracle = PlanAndEvaluate(tweet_graph, oracle_probs,
                                        oracle_probs, tweet_campaign,
                                        model, tweet_pool, k, theta, 113);
  const double via_lda = PlanAndEvaluate(tweet_graph, lda_probs,
                                         oracle_probs, tweet_campaign,
                                         model, tweet_pool, k, theta, 127);
  std::printf("true-utility of plan optimized on oracle topics: %.2f\n",
              oracle);
  std::printf("true-utility of plan optimized on LDA topics:    %.2f "
              "(%.0f%% of the oracle plan)\n",
              via_lda, 100.0 * via_lda / oracle);
  return 0;
}
