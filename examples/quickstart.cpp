// Quickstart: the minimal end-to-end OIPA workflow on the
// request/response API.
//
//   1. Build (or load) a social graph with topic-aware edge probabilities.
//   2. Define a multifaceted campaign T = {t_1..t_l}.
//   3. Build a PlanningContext (piece influence graphs + MRR samples).
//   4. Solve OIPA by solver name ("bab-p") through the SolverRegistry.
//   5. Validate the chosen plan with forward Monte-Carlo simulation.
//
// Run:  ./quickstart [--n=2000] [--k=10] [--ell=3] [--theta=20000]
//                    [--method=bab-p]

#include <cstdio>

#include "graph/generators.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "topic/prob_models.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace oipa;
  FlagParser flags(argc, argv);
  const VertexId n = static_cast<VertexId>(flags.GetInt("n", 2000));
  const int k = static_cast<int>(flags.GetInt("k", 10));
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const int64_t theta = flags.GetInt("theta", 20'000);
  const std::string method = flags.GetString("method", "bab-p");
  const int num_topics = 10;

  // 1. A clustered power-law social graph with synthetic TIC-style
  //    probabilities (in production these come from a learned model;
  //    see examples/learning_pipeline).
  std::printf("[1/5] building social graph (n=%d)...\n", n);
  const Graph graph = GenerateHolmeKim(n, 4, 0.4, /*seed=*/1);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, num_topics, 2.5, /*seed=*/2);
  std::printf("      %d vertices, %lld edges, %d topics\n",
              graph.num_vertices(),
              static_cast<long long>(graph.num_edges()), num_topics);

  // 2. A campaign with `ell` pieces, each about one topic.
  Rng rng(3);
  const Campaign campaign =
      Campaign::SampleUniformPieces(ell, num_topics, &rng);
  for (int j = 0; j < campaign.num_pieces(); ++j) {
    std::printf("      piece %d topics: %s\n", j,
                campaign.piece(j).topics.DebugString().c_str());
  }

  // 3. The shared planning state: per-piece influence graphs + theta MRR
  //    samples, behind one reusable context. Logistic adoption with
  //    alpha=2, beta=1 (a user needs ~2 pieces for a coin-flip chance).
  std::printf("[2/5] collapsing %d piece influence graphs...\n", ell);
  std::printf("[3/5] sampling %lld MRR sets...\n",
              static_cast<long long>(theta));
  ContextOptions context_options;
  context_options.theta = theta;
  context_options.holdout_theta = 0;  // step 5 validates by simulation
  context_options.seed = 4;
  const auto context = PlanningContext::Borrow(
      graph, probs, campaign, LogisticAdoptionModel(2.0, 1.0),
      context_options);
  OIPA_CHECK(context.ok()) << context.status().ToString();

  // 4. Solve by registry name; 10% of users can promote. Errors come
  //    back as Status values, never aborts.
  PlanRequest request;
  request.solver = method;
  for (VertexId v = 0; v < n; v += 10) request.pool.push_back(v);
  request.budgets = {k};
  std::printf("[4/5] solving OIPA (k=%d, method=%s)...\n", k,
              method.c_str());
  const StatusOr<PlanResponse> result = Solve(**context, request);
  if (!result.ok()) {
    std::printf("solve failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("      plan: %s\n", result->plan.DebugString().c_str());
  std::printf(
      "      estimated adoption utility: %.2f users "
      "(upper bound %.2f, %lld nodes, converged=%s, %.3fs)\n",
      result->utility, result->upper_bound,
      static_cast<long long>(result->nodes_expanded),
      result->converged ? "yes" : "no", result->seconds);

  // 5. Sanity-check with forward simulation (independent randomness).
  std::printf("[5/5] validating with 2000 forward simulations...\n");
  const double simulated =
      (*context)->SimulateUtility(result->plan, 2000, 5);
  std::printf("      simulated adoption utility: %.2f users\n", simulated);
  return 0;
}
