// Quickstart: the minimal end-to-end OIPA workflow.
//
//   1. Build (or load) a social graph with topic-aware edge probabilities.
//   2. Define a multifaceted campaign T = {t_1..t_l}.
//   3. Collapse per-piece influence graphs and draw MRR samples.
//   4. Solve OIPA with the progressive branch-and-bound (BAB-P).
//   5. Validate the chosen plan with forward Monte-Carlo simulation.
//
// Run:  ./quickstart [--n=2000] [--k=10] [--ell=3] [--theta=20000]

#include <cstdio>

#include "graph/generators.h"
#include "oipa/adoption.h"
#include "oipa/branch_and_bound.h"
#include "rrset/mrr_collection.h"
#include "topic/campaign.h"
#include "topic/influence_graph.h"
#include "topic/prob_models.h"
#include "util/flags.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace oipa;
  FlagParser flags(argc, argv);
  const VertexId n = static_cast<VertexId>(flags.GetInt("n", 2000));
  const int k = static_cast<int>(flags.GetInt("k", 10));
  const int ell = static_cast<int>(flags.GetInt("ell", 3));
  const int64_t theta = flags.GetInt("theta", 20'000);
  const int num_topics = 10;

  // 1. A clustered power-law social graph with synthetic TIC-style
  //    probabilities (in production these come from a learned model;
  //    see examples/learning_pipeline).
  std::printf("[1/5] building social graph (n=%d)...\n", n);
  const Graph graph = GenerateHolmeKim(n, 4, 0.4, /*seed=*/1);
  const EdgeTopicProbs probs =
      AssignWeightedCascadeTopics(graph, num_topics, 2.5, /*seed=*/2);
  std::printf("      %d vertices, %lld edges, %d topics\n",
              graph.num_vertices(),
              static_cast<long long>(graph.num_edges()), num_topics);

  // 2. A campaign with `ell` pieces, each about one topic.
  Rng rng(3);
  const Campaign campaign =
      Campaign::SampleUniformPieces(ell, num_topics, &rng);
  for (int j = 0; j < campaign.num_pieces(); ++j) {
    std::printf("      piece %d topics: %s\n", j,
                campaign.piece(j).topics.DebugString().c_str());
  }

  // 3. Per-piece influence graphs + theta MRR samples.
  std::printf("[2/5] collapsing %d piece influence graphs...\n", ell);
  const std::vector<InfluenceGraph> pieces =
      BuildPieceGraphs(graph, probs, campaign);
  std::printf("[3/5] sampling %lld MRR sets...\n",
              static_cast<long long>(theta));
  const MrrCollection mrr = MrrCollection::Generate(pieces, theta, 4);

  // 4. Solve: logistic adoption with alpha=2, beta=1 (a user needs ~2
  //    pieces for a coin-flip adoption chance); 10% of users can promote.
  const LogisticAdoptionModel model(2.0, 1.0);
  std::vector<VertexId> pool;
  for (VertexId v = 0; v < n; v += 10) pool.push_back(v);
  BabOptions options;
  options.budget = k;
  options.progressive = true;  // BAB-P
  std::printf("[4/5] solving OIPA (k=%d, BAB-P)...\n", k);
  BabSolver solver(&mrr, model, pool, options);
  const BabResult result = solver.Solve();
  std::printf("      plan: %s\n", result.plan.DebugString().c_str());
  std::printf(
      "      estimated adoption utility: %.2f users "
      "(upper bound %.2f, %lld nodes, %.3fs)\n",
      result.utility, result.upper_bound,
      static_cast<long long>(result.nodes_expanded), result.seconds);

  // 5. Sanity-check with forward simulation (independent randomness).
  std::printf("[5/5] validating with 2000 forward simulations...\n");
  const double simulated =
      SimulateAdoptionUtility(pieces, model, result.plan, 2000, 5);
  std::printf("      simulated adoption utility: %.2f users\n", simulated);
  return 0;
}
