// Viral-video channel scenario (the paper's second motivating example):
// a creator wants SUBSCRIBERS. A user who watches a single viral video
// rarely subscribes — SM content fades fast — but watching several
// videos from the same channel converts well. The channel can pay k
// influencer shout-outs and must decide WHICH of its videos each
// influencer should push.
//
// The example also demonstrates budget sensitivity: how the optimal
// video-to-influencer split shifts as the budget grows.
//
// Run:  ./viral_video_channel [--theta=20000]

#include <cstdio>

#include "data/datasets.h"
#include "graph/generators.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "topic/campaign.h"
#include "topic/prob_models.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace oipa;
  FlagParser flags(argc, argv);
  // theta is deliberately generous relative to the graph: sparse retweet
  // networks give each influencer only a handful of sample hits, and an
  // optimizer fed too few samples overfits them (its estimate exceeds
  // the simulated truth).
  const int64_t theta = flags.GetInt("theta", 60'000);

  // A retweet-style sharing network: very sparse, celebrity-dominated —
  // the regime of the paper's tweet dataset.
  constexpr int kTopics = 12;
  const Graph graph = GenerateRetweetForest(5'000, 1.4, 41);
  const auto interests =
      SampleNodeTopicProfiles(graph.num_vertices(), kTopics, 0.15, 2, 43);
  const EdgeTopicProbs probs =
      AssignAffinityTopics(graph, interests, 2, 1.0, 0.3);

  // The channel's four flagship videos, each with its own topic blend.
  Campaign campaign;
  TopicVector gaming(kTopics);
  gaming[0] = 0.7;
  gaming[1] = 0.3;
  campaign.AddPiece({"speedrun-video", gaming});
  TopicVector cooking(kTopics);
  cooking[4] = 1.0;
  campaign.AddPiece({"cooking-video", cooking});
  TopicVector travel(kTopics);
  travel[7] = 0.6;
  travel[8] = 0.4;
  campaign.AddPiece({"travel-video", travel});
  TopicVector tech(kTopics);
  tech[10] = 1.0;
  campaign.AddPiece({"teardown-video", tech});

  // Subscription behavior: one video ~9% conversion, two ~33%, all four
  // near certain.
  const LogisticAdoptionModel model(2.3, 1.6);
  ContextOptions context_options;
  context_options.theta = theta;
  context_options.holdout_theta = 0;  // validated by simulation below
  context_options.seed = 47;
  const auto context =
      PlanningContext::Borrow(graph, probs, campaign, model,
                              context_options);
  OIPA_CHECK(context.ok()) << context.status().ToString();
  const std::vector<VertexId> influencers =
      SamplePromoterPool(graph.num_vertices(), 0.05, 53);

  // One SolveBatch sweeps every budget against the same MRR samples —
  // the sampling pass is paid once, not once per budget.
  PlanRequest request;
  request.solver = "bab-p";
  request.pool = influencers;
  request.budgets = {4, 8, 16, 32};
  const auto sweep = SolveBatch(**context, request);
  OIPA_CHECK(sweep.ok()) << sweep.status().ToString();

  std::printf(
      "expected new subscribers by shout-out budget (BAB-P):\n\n");
  std::printf("  %6s  %12s  %s\n", "budget", "subscribers",
              "shout-outs per video (speedrun/cooking/travel/teardown)");
  for (const PlanResponse& res : *sweep) {
    std::printf("  %6d  %12.2f  %zu / %zu / %zu / %zu\n", res.budget,
                res.utility, res.plan.SeedSet(0).size(),
                res.plan.SeedSet(1).size(), res.plan.SeedSet(2).size(),
                res.plan.SeedSet(3).size());
  }

  // Detail at budget 16: validate with simulation and show the overlap
  // effect — how many users receive 2+ videos under the chosen plan.
  const PlanResponse& res = (*sweep)[2];
  const double sim = (*context)->SimulateUtility(res.plan, 1000, 59);
  std::printf(
      "\nbudget 16 plan, forward-simulated subscribers: %.2f "
      "(MRR estimate %.2f)\n",
      sim, res.utility);
  return 0;
}
