// Viral-video channel scenario (the paper's second motivating example):
// a creator wants SUBSCRIBERS. A user who watches a single viral video
// rarely subscribes — SM content fades fast — but watching several
// videos from the same channel converts well. The channel can pay k
// influencer shout-outs and must decide WHICH of its videos each
// influencer should push.
//
// The example also demonstrates budget sensitivity: how the optimal
// video-to-influencer split shifts as the budget grows.
//
// Run:  ./viral_video_channel [--theta=20000]

#include <cstdio>

#include "data/datasets.h"
#include "graph/generators.h"
#include "oipa/adoption.h"
#include "oipa/branch_and_bound.h"
#include "rrset/mrr_collection.h"
#include "topic/campaign.h"
#include "topic/influence_graph.h"
#include "topic/prob_models.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace oipa;
  FlagParser flags(argc, argv);
  // theta is deliberately generous relative to the graph: sparse retweet
  // networks give each influencer only a handful of sample hits, and an
  // optimizer fed too few samples overfits them (its estimate exceeds
  // the simulated truth).
  const int64_t theta = flags.GetInt("theta", 60'000);

  // A retweet-style sharing network: very sparse, celebrity-dominated —
  // the regime of the paper's tweet dataset.
  constexpr int kTopics = 12;
  const Graph graph = GenerateRetweetForest(5'000, 1.4, 41);
  const auto interests =
      SampleNodeTopicProfiles(graph.num_vertices(), kTopics, 0.15, 2, 43);
  const EdgeTopicProbs probs =
      AssignAffinityTopics(graph, interests, 2, 1.0, 0.3);

  // The channel's four flagship videos, each with its own topic blend.
  Campaign campaign;
  TopicVector gaming(kTopics);
  gaming[0] = 0.7;
  gaming[1] = 0.3;
  campaign.AddPiece({"speedrun-video", gaming});
  TopicVector cooking(kTopics);
  cooking[4] = 1.0;
  campaign.AddPiece({"cooking-video", cooking});
  TopicVector travel(kTopics);
  travel[7] = 0.6;
  travel[8] = 0.4;
  campaign.AddPiece({"travel-video", travel});
  TopicVector tech(kTopics);
  tech[10] = 1.0;
  campaign.AddPiece({"teardown-video", tech});

  // Subscription behavior: one video ~9% conversion, two ~33%, all four
  // near certain.
  const LogisticAdoptionModel model(2.3, 1.6);
  const auto pieces = BuildPieceGraphs(graph, probs, campaign);
  const MrrCollection mrr = MrrCollection::Generate(pieces, theta, 47);
  const std::vector<VertexId> influencers =
      SamplePromoterPool(graph.num_vertices(), 0.05, 53);

  std::printf(
      "expected new subscribers by shout-out budget (BAB-P):\n\n");
  std::printf("  %6s  %12s  %s\n", "budget", "subscribers",
              "shout-outs per video (speedrun/cooking/travel/teardown)");
  for (int k : {4, 8, 16, 32}) {
    BabOptions options;
    options.budget = k;
    options.progressive = true;
    const BabResult res =
        BabSolver(&mrr, model, influencers, options).Solve();
    std::printf("  %6d  %12.2f  %zu / %zu / %zu / %zu\n", k, res.utility,
                res.plan.SeedSet(0).size(), res.plan.SeedSet(1).size(),
                res.plan.SeedSet(2).size(), res.plan.SeedSet(3).size());
  }

  // Detail at budget 16: validate with simulation and show the overlap
  // effect — how many users receive 2+ videos under the chosen plan.
  BabOptions options;
  options.budget = 16;
  options.progressive = true;
  const BabResult res =
      BabSolver(&mrr, model, influencers, options).Solve();
  const double sim =
      SimulateAdoptionUtility(pieces, model, res.plan, 1000, 59);
  std::printf(
      "\nbudget 16 plan, forward-simulated subscribers: %.2f "
      "(MRR estimate %.2f)\n",
      sim, res.utility);
  return 0;
}
