// Election-campaign scenario (the paper's motivating example): a
// candidate must communicate positions on several ISSUES — taxation,
// immigration, healthcare — through a limited roster of endorsers. A
// voter is likely to turn out only after hearing the candidate's message
// on multiple issues (logistic adoption).
//
// The example contrasts three staffing strategies for the same endorser
// budget:
//   * "one-issue blitz"  — all endorsers push the single best issue
//                          (the TIM baseline);
//   * "topic-blind"      — pick endorsers by raw popularity, then pick
//                          one issue (the IM baseline);
//   * "portfolio"        — OIPA's per-issue assignment (BAB-P).
//
// Run:  ./election_campaign [--k=12] [--theta=20000]

#include <cstdio>

#include "data/datasets.h"
#include "graph/generators.h"
#include "oipa/api/plan_request.h"
#include "oipa/api/planning_context.h"
#include "oipa/api/solver_registry.h"
#include "topic/campaign.h"
#include "topic/prob_models.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace oipa;
  FlagParser flags(argc, argv);
  const int k = static_cast<int>(flags.GetInt("k", 12));
  const int64_t theta = flags.GetInt("theta", 20'000);

  // An electorate of 3000 voters in a clustered social graph. Topics 0-5
  // are political issue areas; every voter cares about a couple of them.
  constexpr int kIssues = 6;
  const char* kIssueNames[kIssues] = {"taxation",  "immigration",
                                      "healthcare", "education",
                                      "climate",    "security"};
  const Graph graph = GenerateHolmeKim(3000, 5, 0.5, 11);
  const auto voter_interests =
      SampleNodeTopicProfiles(graph.num_vertices(), kIssues, 0.3, 2, 13);
  const EdgeTopicProbs probs =
      AssignAffinityTopics(graph, voter_interests, 3, 1.2);

  // The campaign: one message piece per headline issue (three pieces).
  Campaign campaign;
  campaign.AddPiece(
      {"tax-plan", TopicVector::PureTopic(kIssues, 0)});
  campaign.AddPiece(
      {"healthcare-plan", TopicVector::PureTopic(kIssues, 2)});
  campaign.AddPiece(
      {"climate-plan", TopicVector::PureTopic(kIssues, 4)});

  // Voters adopt (decide to vote for the candidate) per the logistic
  // model: one message rarely converts, two or three usually do.
  const LogisticAdoptionModel model(3.0, 1.6);
  std::printf("adoption probability by #messages heard: ");
  for (int c = 0; c <= campaign.num_pieces(); ++c) {
    std::printf("%d:%.3f ", c, model.AdoptionProb(c));
  }
  std::printf("\n\n");

  // One shared planning context; the three staffing strategies are just
  // three solver names dispatched against it.
  ContextOptions context_options;
  context_options.theta = theta;
  context_options.holdout_theta = 0;  // validated by simulation below
  context_options.seed = 17;
  const auto context =
      PlanningContext::Borrow(graph, probs, campaign, model,
                              context_options);
  OIPA_CHECK(context.ok()) << context.status().ToString();
  const std::vector<VertexId> endorsers =
      SamplePromoterPool(graph.num_vertices(), 0.10, 19);

  PlanRequest request;
  request.pool = endorsers;
  request.budgets = {k};
  request.seed = 23;
  auto solve = [&](const char* solver) {
    request.solver = solver;
    StatusOr<PlanResponse> response = Solve(**context, request);
    OIPA_CHECK(response.ok()) << response.status().ToString();
    return *std::move(response);
  };
  // Strategy 1: topic-blind endorser pick + best single issue (IM).
  const PlanResponse blind = solve("im");
  // Strategy 2: per-issue optimization, all budget on the best one (TIM).
  const PlanResponse blitz = solve("tim");
  // Strategy 3: OIPA portfolio via BAB-P.
  const PlanResponse portfolio = solve("bab-p");

  std::printf("strategy comparison (budget: %d endorsements)\n", k);
  std::printf("  topic-blind (IM):      %8.2f expected voters\n",
              blind.utility);
  std::printf("  one-issue blitz (TIM): %8.2f expected voters\n",
              blitz.utility);
  std::printf("  OIPA portfolio:        %8.2f expected voters\n\n",
              portfolio.utility);

  std::printf("portfolio assignment:\n");
  for (int j = 0; j < campaign.num_pieces(); ++j) {
    std::printf("  %-16s -> %zu endorsers:",
                campaign.piece(j).name.c_str(),
                portfolio.plan.SeedSet(j).size());
    for (VertexId v : portfolio.plan.SeedSet(j)) {
      // Describe each endorser by their dominant issue interest.
      int top = 0;
      for (int z = 1; z < kIssues; ++z) {
        if (voter_interests[v][z] > voter_interests[v][top]) top = z;
      }
      std::printf(" #%d(%s)", v, kIssueNames[top]);
    }
    std::printf("\n");
  }

  const double simulated =
      (*context)->SimulateUtility(portfolio.plan, 2000, 31);
  std::printf("\nforward-simulated expected voters: %.2f\n", simulated);
  return 0;
}
